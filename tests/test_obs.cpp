// The observability layer's own contracts: ring/seqlock snapshot semantics,
// span parentage (ambient and ContextScope-propagated), metrics arithmetic
// and merge, export formats — and the contract that matters to everyone
// else: tracing on changes no service byte.  The invariance suite reruns
// the pool, the parallel counter, and the warm/cold session server with
// tracing on and asserts the results equal the untraced reference.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "counting/approxmc.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/sampler_pool.hpp"
#include "service/sampling_server.hpp"

namespace unigen {
namespace {

/// Resets the global observability state a previous test may have left
/// behind (one process runs the whole suite).
void obs_reset(bool enable) {
  obs::set_enabled(true);
  obs::clear_all();
  obs::metrics().reset();
  obs::set_enabled(enable);
}

/// 504 models over 10 vars — hashed mode, so the whole span ladder
/// (pool.request → … → bsat.call) actually runs.
Cnf hashed_mode_formula() {
  Cnf cnf(10);
  cnf.add_clause({Lit(0, false), Lit(1, false), Lit(2, false)});
  cnf.add_clause({Lit(3, false), Lit(4, true)});
  cnf.add_clause({Lit(5, false), Lit(6, false), Lit(7, true)});
  cnf.add_clause({Lit(8, false), Lit(9, false), Lit(0, true)});
  return cnf;
}

void expect_same_results(const std::vector<SampleResult>& a,
                         const std::vector<SampleResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].status, b[i].status) << "request " << i;
    EXPECT_EQ(a[i].witness, b[i].witness) << "request " << i;
  }
}

TEST(ObsTrace, DisabledByDefaultAndSpansAreNoops) {
  // Fresh processes start with tracing off; this suite may run after a
  // test that enabled it, so assert the *semantics*, not the boot state.
  obs_reset(false);
  EXPECT_FALSE(obs::enabled());
  {
    obs::Span span("test.noop");
    span.set_value(42);
    EXPECT_FALSE(span.context().valid());
    EXPECT_FALSE(obs::current_context().valid());
  }
  obs::metrics().counter("test.noop_counter").add();
  obs::set_enabled(true);
  EXPECT_TRUE(obs::snapshot_events().empty());
  EXPECT_EQ(obs::metrics().counter("test.noop_counter").value(), 0u);
  obs::set_enabled(false);
}

TEST(ObsTrace, SpanNestingRecordsParentage) {
  obs_reset(true);
  std::uint64_t outer_id = 0, trace = 0;
  {
    obs::Span outer("test.outer");
    outer.set_value(7);
    outer_id = outer.context().span_id;
    trace = outer.context().trace_id;
    ASSERT_NE(trace, 0u);
    {
      obs::Span inner("test.inner");
      EXPECT_EQ(inner.context().trace_id, trace);
    }
    // Inner closed: the outer span is current again.
    EXPECT_EQ(obs::current_context().span_id, outer_id);
  }
  EXPECT_FALSE(obs::current_context().valid());

  const auto events = obs::snapshot_events();
  ASSERT_EQ(events.size(), 2u);
  const auto inner_it = std::find_if(
      events.begin(), events.end(),
      [](const obs::TraceEvent& e) { return e.name == std::string("test.inner"); });
  const auto outer_it = std::find_if(
      events.begin(), events.end(),
      [](const obs::TraceEvent& e) { return e.name == std::string("test.outer"); });
  ASSERT_NE(inner_it, events.end());
  ASSERT_NE(outer_it, events.end());
  EXPECT_EQ(outer_it->span_id, outer_id);
  EXPECT_EQ(outer_it->parent_id, 0u);
  EXPECT_EQ(outer_it->value, 7u);
  EXPECT_EQ(inner_it->parent_id, outer_id);
  EXPECT_EQ(inner_it->trace_id, trace);
  // The inner span closed first and nests inside the outer interval.
  EXPECT_LE(outer_it->start_ns, inner_it->start_ns);
  EXPECT_LE(inner_it->end_ns, outer_it->end_ns);
  obs::set_enabled(false);
}

TEST(ObsTrace, FallbackTraceSeedsARootSpan) {
  obs_reset(true);
  const std::uint64_t want = obs::trace_id_for_request(123, 4);
  {
    obs::Span root("test.root", want);
    EXPECT_EQ(root.context().trace_id, want);
  }
  const auto events = obs::snapshot_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].trace_id, want);
  EXPECT_EQ(events[0].parent_id, 0u);
  obs::set_enabled(false);
}

TEST(ObsTrace, TraceIdIsAPureFunctionOfRequestCoordinates) {
  EXPECT_EQ(obs::trace_id_for_request(0xDAC14, 1),
            obs::trace_id_for_request(0xDAC14, 1));
  EXPECT_NE(obs::trace_id_for_request(0xDAC14, 1),
            obs::trace_id_for_request(0xDAC14, 2));
  EXPECT_NE(obs::trace_id_for_request(0xDAC14, 1),
            obs::trace_id_for_request(0xDAC15, 1));
  EXPECT_NE(obs::trace_id_for_request(0, 0), 0u);
}

TEST(ObsTrace, ContextScopePropagatesAcrossThreads) {
  obs_reset(true);
  obs::TraceContext handoff;
  std::uint64_t parent_id = 0;
  {
    obs::Span parent("test.dispatch");
    handoff = parent.context();
    parent_id = handoff.span_id;
    std::thread worker([handoff] {
      obs::ContextScope scope(handoff);
      obs::Span child("test.worker_side");
      child.set_worker(99);
    });
    worker.join();
  }
  const auto events = obs::snapshot_events();
  ASSERT_EQ(events.size(), 2u);
  const auto child_it = std::find_if(events.begin(), events.end(),
                                     [](const obs::TraceEvent& e) {
                                       return e.worker == 99;
                                     });
  ASSERT_NE(child_it, events.end());
  EXPECT_EQ(child_it->trace_id, handoff.trace_id);
  EXPECT_EQ(child_it->parent_id, parent_id);
  obs::set_enabled(false);
}

TEST(ObsTrace, RingOverwritesOldestAndCountsDrops) {
  obs::set_ring_capacity(64);  // floor of the clamp
  // Rings are created per thread on first record and keep their capacity,
  // so exercise the small ring on a fresh thread.
  std::uint64_t dropped_before = obs::dropped_events();
  std::thread t([] {
    obs::set_enabled(true);
    for (int i = 0; i < 500; ++i) obs::Span span("test.flood");
  });
  t.join();
  const auto events = obs::snapshot_events();
  std::size_t flood = 0;
  for (const auto& e : events)
    if (e.name == std::string("test.flood")) ++flood;
  EXPECT_LE(flood, 64u);
  EXPECT_GT(flood, 0u);
  EXPECT_GE(obs::dropped_events() - dropped_before, 500u - 64u);
  obs::set_ring_capacity(8192);
  obs_reset(false);
}

TEST(ObsTrace, SnapshotIsAWatermarkClearAllAdvancesIt) {
  obs_reset(true);
  { obs::Span a("test.first"); }
  EXPECT_EQ(obs::snapshot_events().size(), 1u);
  // snapshot_events does not consume …
  EXPECT_EQ(obs::snapshot_events().size(), 1u);
  obs::clear_all();
  // … clear_all does.
  EXPECT_TRUE(obs::snapshot_events().empty());
  { obs::Span b("test.second"); }
  const auto events = obs::snapshot_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, std::string("test.second"));
  obs::set_enabled(false);
}

TEST(ObsTrace, JsonlExportHasVersionedHeaderAndOneLinePerEvent) {
  obs_reset(true);
  { obs::Span a("test.json_a"); }
  { obs::Span b("test.json_b"); }
  const std::string jsonl = obs::trace_jsonl();
  EXPECT_NE(jsonl.find("\"schema\":\"unigen.trace.v1\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"events\":2"), std::string::npos);
  EXPECT_NE(jsonl.find("test.json_a"), std::string::npos);
  EXPECT_NE(jsonl.find("test.json_b"), std::string::npos);
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 3);
  obs_reset(false);
}

TEST(ObsMetrics, CounterAndHistogramArithmetic) {
  obs_reset(true);
  obs::Counter& c = obs::metrics().counter("test.counter");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);

  obs::Histogram& h = obs::metrics().histogram("test.histogram");
  h.record_ns(1);    // bucket 0: [1, 2)
  h.record_ns(3);    // bucket 1: [2, 4)
  h.record_ns(900);  // bucket 9: [512, 1024)
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum_ns(), 904u);
  EXPECT_EQ(h.max_ns(), 900u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(9), 1u);
  h.record_seconds(1.0);  // 1e9 ns → bucket 29: [2^29, 2^30)
  EXPECT_EQ(h.bucket(29), 1u);
  obs_reset(false);
}

TEST(ObsMetrics, SnapshotMergeFoldsByName) {
  obs::MetricsSnapshot a, b;
  a.counters = {{"alpha", 1}, {"shared", 10}};
  b.counters = {{"beta", 2}, {"shared", 5}};
  obs::MetricsSnapshot::HistogramRow ha, hb;
  ha.name = "lat";
  ha.count = 2;
  ha.sum_ns = 100;
  ha.max_ns = 80;
  ha.buckets[3] = 2;
  hb.name = "lat";
  hb.count = 1;
  hb.sum_ns = 50;
  hb.max_ns = 90;
  hb.buckets[3] = 1;
  a.histograms = {ha};
  b.histograms = {hb};

  a.merge(b);
  ASSERT_EQ(a.counters.size(), 3u);
  std::map<std::string, std::uint64_t> got;
  for (const auto& row : a.counters) got[row.name] = row.value;
  EXPECT_EQ(got["alpha"], 1u);
  EXPECT_EQ(got["beta"], 2u);
  EXPECT_EQ(got["shared"], 15u);
  ASSERT_EQ(a.histograms.size(), 1u);
  EXPECT_EQ(a.histograms[0].count, 3u);
  EXPECT_EQ(a.histograms[0].sum_ns, 150u);
  EXPECT_EQ(a.histograms[0].max_ns, 90u);
  EXPECT_EQ(a.histograms[0].buckets[3], 3u);
}

TEST(ObsMetrics, JsonExportIsVersioned) {
  obs_reset(true);
  obs::metrics().counter("test.json_counter").add(3);
  obs::metrics().histogram("test.json_hist").record_ns(100);
  const std::string json = obs::metrics_json();
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"test.json_counter\":3"), std::string::npos);
  EXPECT_NE(json.find("\"test.json_hist\""), std::string::npos);
  obs_reset(false);
}

// --- tracing is byte-invisible to the services -------------------------

TEST(ObsInvariance, PoolStreamsAreByteIdenticalWithTracingOn) {
  const Cnf cnf = hashed_mode_formula();
  constexpr std::uint64_t kSeed = 777;
  constexpr std::size_t kRequests = 16;
  obs_reset(false);
  std::vector<SampleResult> reference;
  std::vector<BatchResult> reference_batches;
  {
    SamplerPoolOptions o;
    o.num_threads = 2;
    o.seed = kSeed;
    SamplerPool pool(cnf, o);
    reference = pool.sample_many(kRequests);
    reference_batches = pool.sample_batches(4, 3);
  }
  obs_reset(true);
  {
    SamplerPoolOptions o;
    o.num_threads = 2;
    o.seed = kSeed;
    SamplerPool pool(cnf, o);
    expect_same_results(reference, pool.sample_many(kRequests));
    const auto batches = pool.sample_batches(4, 3);
    ASSERT_EQ(batches.size(), reference_batches.size());
    for (std::size_t i = 0; i < batches.size(); ++i) {
      EXPECT_EQ(batches[i].status, reference_batches[i].status);
      EXPECT_EQ(batches[i].models, reference_batches[i].models);
    }
  }
  EXPECT_FALSE(obs::snapshot_events().empty())
      << "the traced run should actually have recorded spans";
  obs_reset(false);
}

TEST(ObsInvariance, ParallelCountIsByteIdenticalWithTracingOn) {
  const Cnf cnf = hashed_mode_formula();
  obs_reset(false);
  ApproxMcOptions o;
  o.num_threads = 2;
  Rng ref_rng(4242);
  const ApproxMcResult reference = approx_count(cnf, o, ref_rng);
  ASSERT_TRUE(reference.valid);

  obs_reset(true);
  Rng rng(4242);
  const ApproxMcResult got = approx_count(cnf, o, rng);
  ASSERT_TRUE(got.valid);
  EXPECT_EQ(got.cell_count, reference.cell_count);
  EXPECT_EQ(got.hash_count, reference.hash_count);
  EXPECT_EQ(got.exact, reference.exact);
  Rng probe_a = ref_rng;
  Rng probe_b = rng;
  EXPECT_EQ(probe_a(), probe_b());
  obs_reset(false);
}

TEST(ObsInvariance, ServerWarmEqualsColdWithTracingOnAndOff) {
  const Cnf cnf = hashed_mode_formula();
  constexpr std::size_t kCount = 6;
  // Four runs of the same two-round request sequence: {off, on} × fresh
  // server.  Within a run, round 0 is cold and round 1 warm; all four must
  // produce the same bytes round-for-round.
  std::vector<std::vector<SampleResult>> rounds_off, rounds_on;
  for (const bool tracing : {false, true}) {
    obs_reset(tracing);
    SamplingServer server{};
    auto& rounds = tracing ? rounds_on : rounds_off;
    for (int round = 0; round < 2; ++round) {
      ServerSampleResponse r = server.sample(cnf, kCount);
      EXPECT_EQ(r.warm, round > 0);
      rounds.push_back(std::move(r.samples));
    }
  }
  ASSERT_EQ(rounds_off.size(), 2u);
  ASSERT_EQ(rounds_on.size(), 2u);
  for (int round = 0; round < 2; ++round)
    expect_same_results(rounds_off[static_cast<std::size_t>(round)],
                        rounds_on[static_cast<std::size_t>(round)]);
  obs_reset(false);
}

// --- span-tree shape on a real service run -----------------------------

TEST(ObsSpanTree, PoolRunProducesWellFormedPerRequestTraces) {
  const Cnf cnf = hashed_mode_formula();
  obs_reset(true);
  const std::uint64_t dropped_before = obs::dropped_events();
  constexpr std::uint64_t kSeed = 31;
  constexpr std::size_t kRequests = 8;
  {
    SamplerPoolOptions o;
    o.num_threads = 2;
    o.seed = kSeed;
    SamplerPool pool(cnf, o);
    ASSERT_TRUE(pool.prepare());
    // One sample_many CALL is one service request — one trace.  Eight
    // single-sample calls give eight request traces on streams 1…8.
    for (std::size_t k = 0; k < kRequests; ++k) pool.sample_many(1);
  }
  const auto events = obs::snapshot_events();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(obs::dropped_events(), dropped_before);

  std::set<std::uint64_t> span_ids;
  std::set<std::string> names;
  for (const auto& e : events) {
    EXPECT_NE(e.trace_id, 0u);
    EXPECT_NE(e.span_id, 0u);
    EXPECT_LE(e.start_ns, e.end_ns);
    EXPECT_TRUE(span_ids.insert(e.span_id).second)
        << "span ids must be unique";
    names.insert(e.name);
  }
  EXPECT_TRUE(names.count("pool.prepare"));
  EXPECT_TRUE(names.count("pool.request"));
  EXPECT_TRUE(names.count("sample.request"));
  EXPECT_TRUE(names.count("hash.probe"));
  EXPECT_TRUE(names.count("bsat.call"));

  // Parentage: every non-root's parent exists, and parent and child agree
  // on the trace id.
  std::map<std::uint64_t, const obs::TraceEvent*> by_id;
  for (const auto& e : events) by_id[e.span_id] = &e;
  for (const auto& e : events) {
    if (e.parent_id == 0) continue;
    const auto parent = by_id.find(e.parent_id);
    ASSERT_NE(parent, by_id.end())
        << e.name << " has a dangling parent span id";
    EXPECT_EQ(parent->second->trace_id, e.trace_id)
        << e.name << " crosses traces";
  }

  // One trace per request: the k-th sample request's root is pool.request
  // with trace_id_for_request(seed, k+1) (stream 0 = prepare), and its
  // whole subtree shares that trace id.
  std::map<std::uint64_t, std::size_t> request_roots;
  for (const auto& e : events)
    if (e.name == std::string("pool.request")) ++request_roots[e.trace_id];
  EXPECT_EQ(request_roots.size(), kRequests);
  for (std::size_t k = 1; k <= kRequests; ++k) {
    const std::uint64_t want = obs::trace_id_for_request(kSeed, k);
    EXPECT_EQ(request_roots.count(want), 1u) << "stream " << k;
  }
  // The prepare span rides the dedicated stream-0 trace.
  bool prepare_found = false;
  for (const auto& e : events)
    if (e.name == std::string("pool.prepare")) {
      prepare_found = true;
      EXPECT_EQ(e.trace_id, obs::trace_id_for_request(kSeed, 0));
    }
  EXPECT_TRUE(prepare_found);
  obs_reset(false);
}

}  // namespace
}  // namespace unigen
