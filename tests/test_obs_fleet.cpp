// Trace propagation across the process boundary: trace ids ride the Task
// IPC frame, workers record their own spans and ship them back inside
// Result, and the supervisor re-emits them next to its own per-dispatch
// attempt spans.  The headline scenario is the faulted one — a 2-worker
// fleet request whose task 2 SIGKILLs its worker on the first attempt must
// still produce ONE trace holding: the supervisor's fleet.attempt.crashed
// span (attempt 1), the retry's fleet.attempt span (attempt 2), and the
// retry's shipped worker.task subtree — all attempt-tagged, all on the
// request's trace id.  And, as everywhere else: tracing on changes no
// byte the fleet returns.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/process_fleet.hpp"
#include "service/sampler_pool.hpp"

namespace unigen {
namespace {

void obs_reset(bool enable) {
  obs::set_enabled(true);
  obs::clear_all();
  obs::metrics().reset();
  obs::set_enabled(enable);
}

Cnf hashed_mode_formula() {
  Cnf cnf(10);
  cnf.add_clause({Lit(0, false), Lit(1, false), Lit(2, false)});
  cnf.add_clause({Lit(3, false), Lit(4, true)});
  cnf.add_clause({Lit(5, false), Lit(6, false), Lit(7, true)});
  cnf.add_clause({Lit(8, false), Lit(9, false), Lit(0, true)});
  return cnf;
}

SamplerPoolOptions fleet_pool_options(std::uint64_t seed,
                                      const std::string& fault_plan = {}) {
  SamplerPoolOptions o;
  o.num_threads = 2;
  o.seed = seed;
  o.unigen.fleet.backend = ExecBackend::kProcessFleet;
  o.unigen.fleet.num_workers = 2;
  o.unigen.fleet.fault_plan = fault_plan;
  return o;
}

TEST(ObsFleet, FaultedRequestYieldsOneTraceWithBothAttempts) {
  const Cnf cnf = hashed_mode_formula();
  constexpr std::uint64_t kSeed = 31;
  constexpr std::size_t kRequests = 6;
  obs_reset(true);
  // Task 2 (= request stream 2) kills its worker on attempt 0; the retry
  // runs clean.
  SamplerPool pool(cnf, fleet_pool_options(
                            kSeed,
                            ProcessFaultPlan().kill_task(2).to_env()));
  ASSERT_TRUE(pool.prepare());
  ASSERT_NE(pool.fleet(), nullptr);
  // The prepare phase traced on its own stream-0 trace (all in-process —
  // the nested count runs through the warm handoff, never the fleet);
  // discard it so the one request below is the only trace in the buffer.
  obs::clear_all();

  const auto results = pool.sample_many(kRequests);
  ASSERT_EQ(results.size(), kRequests);
  EXPECT_GE(pool.fleet()->stats().crashes, 1u);

  const auto events = obs::snapshot_events();
  ASSERT_FALSE(events.empty());

  // One service call ⇒ one trace id across every span, supervisor-side
  // and worker-shipped alike.
  std::set<std::uint64_t> traces;
  for (const auto& e : events) traces.insert(e.trace_id);
  ASSERT_EQ(traces.size(), 1u);
  const std::uint64_t trace = *traces.begin();
  EXPECT_EQ(trace, obs::trace_id_for_request(kSeed, 1))
      << "the request trace is keyed by the call's first stream";

  // The crashed attempt: a supervisor span tagged attempt 1 on task 2,
  // with the dead worker's pid.  Its worker-side spans died with the
  // SIGKILL — the supervisor span is that attempt's attested record.
  const auto crashed = std::find_if(
      events.begin(), events.end(), [](const obs::TraceEvent& e) {
        return e.name == std::string("fleet.attempt.crashed");
      });
  ASSERT_NE(crashed, events.end());
  EXPECT_EQ(crashed->value, 2u);
  EXPECT_EQ(crashed->attempt, 1u);
  EXPECT_NE(crashed->worker, 0u);
  EXPECT_LE(crashed->start_ns, crashed->end_ns);

  // The retry: a served fleet.attempt span tagged attempt 2 on task 2 …
  const auto retry = std::find_if(
      events.begin(), events.end(), [](const obs::TraceEvent& e) {
        return e.name == std::string("fleet.attempt") && e.value == 2 &&
               e.attempt == 2;
      });
  ASSERT_NE(retry, events.end());
  EXPECT_NE(retry->worker, crashed->worker)
      << "the retry ran on a different (respawned or sibling) worker";

  // … and its shipped worker.task subtree, attempt-tagged the same.
  const auto worker_retry = std::find_if(
      events.begin(), events.end(), [](const obs::TraceEvent& e) {
        return e.name == std::string("worker.task") && e.value == 2;
      });
  ASSERT_NE(worker_retry, events.end());
  EXPECT_EQ(worker_retry->attempt, 2u);
  EXPECT_NE(worker_retry->worker, 0u);

  // The un-faulted tasks each served on attempt 1.
  std::map<std::uint64_t, std::uint32_t> served_attempt;
  for (const auto& e : events)
    if (e.name == std::string("fleet.attempt"))
      served_attempt[e.value] = e.attempt;
  ASSERT_EQ(served_attempt.size(), kRequests);
  for (std::uint64_t task = 1; task <= kRequests; ++task)
    EXPECT_EQ(served_attempt[task], task == 2 ? 2u : 1u) << "task " << task;

  // Worker sample.request spans came over IPC for every served task.
  std::size_t worker_tasks = 0, sample_spans = 0;
  for (const auto& e : events) {
    if (e.name == std::string("worker.task")) ++worker_tasks;
    if (e.name == std::string("sample.request")) ++sample_spans;
  }
  EXPECT_EQ(worker_tasks, kRequests);
  EXPECT_GE(sample_spans, kRequests);

  // Span-tree well-formedness on the faulted run: unique ids, resolvable
  // parents, children inside their parent's trace.
  std::map<std::uint64_t, const obs::TraceEvent*> by_id;
  for (const auto& e : events) {
    EXPECT_NE(e.span_id, 0u);
    EXPECT_TRUE(by_id.emplace(e.span_id, &e).second)
        << "duplicate span id on " << e.name;
  }
  std::size_t roots = 0;
  for (const auto& e : events) {
    if (e.parent_id == 0) {
      ++roots;
      continue;
    }
    const auto parent = by_id.find(e.parent_id);
    ASSERT_NE(parent, by_id.end())
        << e.name << " has a dangling parent span id";
    EXPECT_EQ(parent->second->trace_id, e.trace_id);
    EXPECT_NE(parent->second, &e);
  }
  EXPECT_EQ(roots, 1u) << "pool.request is the single root";

  // The JSONL export carries all of it.
  const std::string jsonl = obs::trace_jsonl();
  EXPECT_NE(jsonl.find("unigen.trace.v1"), std::string::npos);
  EXPECT_NE(jsonl.find("fleet.attempt.crashed"), std::string::npos);
  EXPECT_NE(jsonl.find("worker.task"), std::string::npos);
  obs_reset(false);
}

TEST(ObsFleet, SupervisorInternalsLandInMetricsAndSnapshot) {
  const Cnf cnf = hashed_mode_formula();
  constexpr std::uint64_t kSeed = 55;
  obs_reset(true);
  SamplerPool pool(cnf, fleet_pool_options(
                            kSeed,
                            ProcessFaultPlan().kill_task(3).to_env()));
  ASSERT_TRUE(pool.prepare());
  ASSERT_NE(pool.fleet(), nullptr);
  const auto results = pool.sample_many(6);
  ASSERT_EQ(results.size(), 6u);

  const FleetStats& fs = pool.fleet()->stats();
  EXPECT_GE(fs.crashes, 1u);
  EXPECT_EQ(fs.poisoned_tasks, 0u);

  // Metrics mirror the supervisor counters.
  const obs::MetricsSnapshot snap = obs::metrics().snapshot();
  std::map<std::string, std::uint64_t> counters;
  for (const auto& row : snap.counters) counters[row.name] = row.value;
  EXPECT_EQ(counters["fleet.crashes"], fs.crashes);
  EXPECT_EQ(counters["fleet.redispatches"], fs.redispatches);
  EXPECT_EQ(counters["fleet.respawns"], fs.respawns);
  bool recovery_histogram = false;
  for (const auto& row : snap.histograms)
    if (row.name == "fleet.crash_recovery_seconds" && row.count > 0)
      recovery_histogram = true;
  EXPECT_TRUE(recovery_histogram);

  // The introspection snapshot: totals match, both workers described with
  // a known state (a crashed worker may legitimately still be down if the
  // sibling absorbed the redispatch), and the crashed task took 2 attempts.
  const ProcessFleet::FleetSnapshot shot = pool.fleet()->snapshot();
  EXPECT_EQ(shot.totals.crashes, fs.crashes);
  ASSERT_EQ(shot.workers.size(), 2u);
  for (const auto& w : shot.workers) {
    EXPECT_STRNE(w.state, "");
    const bool down = std::string(w.state) == "down" ||
                      std::string(w.state) == "abandoned";
    if (down)
      EXPECT_EQ(w.pid, -1);
    else
      EXPECT_GT(w.pid, 0);
    EXPECT_GT(w.tasks_dispatched, 0u);
  }
  ASSERT_EQ(shot.last_run_attempts.size(), 6u);
  for (std::size_t i = 0; i < shot.last_run_attempts.size(); ++i) {
    // Tasks are streams 1…6 in order; stream 3 crashed once.
    const std::uint32_t want = (i + 1 == 3) ? 2u : 1u;
    EXPECT_EQ(shot.last_run_attempts[i], want) << "task index " << i;
  }
  obs_reset(false);
}

TEST(ObsFleet, FleetBytesMatchInProcessWithTracingOn) {
  const Cnf cnf = hashed_mode_formula();
  constexpr std::uint64_t kSeed = 777;
  constexpr std::size_t kRequests = 12;
  obs_reset(false);
  std::vector<SampleResult> reference;
  {
    SamplerPoolOptions o;
    o.num_threads = 2;
    o.seed = kSeed;
    SamplerPool pool(cnf, o);
    reference = pool.sample_many(kRequests);
  }
  obs_reset(true);
  {
    SamplerPool pool(cnf, fleet_pool_options(
                              kSeed,
                              ProcessFaultPlan().kill_task(4).to_env()));
    ASSERT_TRUE(pool.prepare());
    ASSERT_NE(pool.fleet(), nullptr);
    const auto got = pool.sample_many(kRequests);
    ASSERT_EQ(got.size(), reference.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].status, reference[i].status) << "request " << i;
      EXPECT_EQ(got[i].witness, reference[i].witness) << "request " << i;
    }
  }
  EXPECT_FALSE(obs::snapshot_events().empty());
  obs_reset(false);
}

}  // namespace
}  // namespace unigen
