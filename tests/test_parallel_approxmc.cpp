// Tests for the parallel counting service: byte-identical counts across
// thread counts (including the serial path and the 0 = hardware boundary),
// one solver build per serving worker, leapfrog accounting, and the
// parallel-prepare wiring.  The threaded cases run under the tsan preset;
// the statistics-heavy chi-square regression through the parallel
// prepare() path lives in tests/test_uniformity.cpp.

#include <gtest/gtest.h>

#include <thread>

#include "core/unigen.hpp"
#include "counting/approxmc.hpp"
#include "helpers.hpp"
#include "service/sampler_pool.hpp"

namespace unigen {
namespace {

/// 2^14 models over 14 free variables: far above pivot(0.8) = 52, so the
/// count runs the full hashed median loop on every thread count.
Cnf hashed_count_formula() {
  Cnf cnf(14);
  cnf.add_clause({Lit(0, false), Lit(0, true)});  // tautology, keeps vars
  return cnf;
}

ApproxMcResult count_at(const Cnf& cnf, std::size_t threads,
                        std::uint64_t seed) {
  Rng rng(seed);
  ApproxMcOptions opts;
  opts.num_threads = threads;
  return approx_count(cnf, opts, rng);
}

void expect_same_count(const ApproxMcResult& a, const ApproxMcResult& b) {
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_EQ(a.exact, b.exact);
  EXPECT_EQ(a.timed_out, b.timed_out);
  EXPECT_EQ(a.cell_count, b.cell_count);
  EXPECT_EQ(a.hash_count, b.hash_count);
  EXPECT_EQ(a.iterations_succeeded, b.iterations_succeeded);
}

TEST(ParallelApproxMc, ByteIdenticalAcrossThreadCounts) {
  const Cnf cnf = hashed_count_formula();
  for (const std::uint64_t seed : {3u, 17u, 99u}) {
    const ApproxMcResult serial = count_at(cnf, 1, seed);
    ASSERT_TRUE(serial.valid);
    ASSERT_FALSE(serial.exact);
    for (const std::size_t threads : {2u, 3u, 4u}) {
      const ApproxMcResult parallel = count_at(cnf, threads, seed);
      expect_same_count(serial, parallel);
    }
  }
}

TEST(ParallelApproxMc, HardwareBoundaryMatchesSerial) {
  // num_threads = 0 resolves to hardware_concurrency — whatever that is on
  // the test machine, the count must equal the serial engine's.
  const Cnf cnf = hashed_count_formula();
  const ApproxMcResult serial = count_at(cnf, 1, 41);
  const ApproxMcResult hw = count_at(cnf, 0, 41);
  expect_same_count(serial, hw);
}

TEST(ParallelApproxMc, ByteIdenticalOnRandomFormulas) {
  // The determinism contract on less regular solution spaces, random S
  // included (generator shared with the fuzz harness).
  for (int round = 0; round < 4; ++round) {
    Rng gen(1000 + static_cast<std::uint64_t>(round));
    Cnf cnf = test::random_cnf(12, 14, 3, gen);
    test::attach_random_sampling_set(cnf, 8, gen);
    const ApproxMcResult serial = count_at(cnf, 1, 7 + round);
    const ApproxMcResult parallel = count_at(cnf, 4, 7 + round);
    expect_same_count(serial, parallel);
  }
}

TEST(ParallelApproxMc, OneSolverBuildPerServingWorker) {
  const Cnf cnf = hashed_count_formula();
  const ApproxMcResult r = count_at(cnf, 4, 5);
  ASSERT_TRUE(r.valid);
  EXPECT_GT(r.threads_used, 1u);
  ASSERT_EQ(r.workers.size(), r.threads_used);
  std::uint64_t total_rebuilds = 0;
  bool worker0_built = false;
  for (std::size_t w = 0; w < r.workers.size(); ++w) {
    // A worker that served at least one iteration built its engine exactly
    // once; one that never won the cursor has none.  Worker 0 always has
    // one — it adopts the prologue's exact-count engine.  (At this scale
    // the engine's retired-row compaction cap cannot fire; a count big
    // enough to retire max_retired_rows hash rows on one worker would
    // legitimately report a second build.)
    EXPECT_LE(r.workers[w].solver_rebuilds, 1u) << "worker " << w;
    if (w == 0) worker0_built = r.workers[w].solver_rebuilds == 1;
    total_rebuilds += r.workers[w].solver_rebuilds;
  }
  EXPECT_TRUE(worker0_built);
  // The flat field is the fold across workers.
  EXPECT_EQ(r.solver_rebuilds, total_rebuilds);
}

TEST(ParallelApproxMc, LeapfrogAccounting) {
  const Cnf cnf = hashed_count_formula();
  // Serial: the first iteration is the only cold start; every later one
  // leapfrogs from its predecessor.
  const ApproxMcResult serial = count_at(cnf, 1, 23);
  ASSERT_TRUE(serial.valid);
  const auto started =
      serial.leapfrog_warm_starts + serial.leapfrog_cold_starts;
  EXPECT_EQ(started,
            static_cast<std::uint64_t>(serial.iterations_requested));
  EXPECT_EQ(serial.leapfrog_cold_starts, 1u);
  // Parallel: iterations racing before any completes may also start cold,
  // but never more of them than there are workers; the rest leapfrog.
  const ApproxMcResult parallel = count_at(cnf, 4, 23);
  EXPECT_EQ(parallel.leapfrog_warm_starts + parallel.leapfrog_cold_starts,
            static_cast<std::uint64_t>(parallel.iterations_requested));
  EXPECT_GE(parallel.leapfrog_cold_starts, 1u);
  EXPECT_LE(parallel.leapfrog_cold_starts, parallel.threads_used);
}

TEST(ParallelApproxMc, ExactShortCircuitStaysSerial) {
  // Fewer than pivot models: the exact prologue answers before any fan-out,
  // whatever num_threads says.
  Cnf cnf(5);
  cnf.add_clause({Lit(0, false)});
  const ApproxMcResult r = count_at(cnf, 4, 9);
  ASSERT_TRUE(r.valid);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.cell_count, 16u);
  EXPECT_EQ(r.threads_used, 1u);
  EXPECT_TRUE(r.workers.empty());
}

TEST(ParallelApproxMc, UniGenPrepareWithParallelCounter) {
  // Explicit counter_threads on a single UniGen instance: prepare()'s
  // one-time count fans out, and the prepared state (q, thresholds) equals
  // the serial instance's for the same seed.
  const Cnf cnf = hashed_count_formula();
  UniGenOptions serial_opts;
  serial_opts.counter_threads = 1;
  UniGenOptions parallel_opts;
  parallel_opts.counter_threads = 4;
  Rng rng_a(314), rng_b(314);
  UniGen a(cnf, serial_opts, rng_a);
  UniGen b(cnf, parallel_opts, rng_b);
  ASSERT_TRUE(a.prepare());
  ASSERT_TRUE(b.prepare());
  EXPECT_EQ(a.prepared().q, b.prepared().q);
  EXPECT_EQ(a.prepared().approx_log2_count, b.prepared().approx_log2_count);
  EXPECT_EQ(a.prepared().mode, b.prepared().mode);
  // With identical prepared state and identical post-prepare rng state,
  // the sample streams coincide too.
  for (int i = 0; i < 20; ++i) {
    const auto sa = a.sample();
    const auto sb = b.sample();
    EXPECT_EQ(sa.status, sb.status) << "sample " << i;
    EXPECT_EQ(sa.witness, sb.witness) << "sample " << i;
  }
}

TEST(ParallelApproxMc, PoolPrepareCountsOnPoolWidth) {
  // SamplerPool resolves counter_threads = 0 to its own width; the
  // one-time phase's counter engines each build once.
  Cnf cnf(10);
  cnf.add_clause({Lit(0, false), Lit(1, false), Lit(2, false)});
  cnf.add_clause({Lit(3, false), Lit(4, true)});
  SamplerPoolOptions opts;
  opts.num_threads = 3;
  opts.seed = 2718;
  SamplerPool pool(cnf, opts);
  ASSERT_TRUE(pool.prepare());
  ASSERT_EQ(pool.prepared().mode, UniGenPrepared::Mode::kHashed);
  const auto st = pool.stats();
  // The counter fanned out: its rebuild total counts one engine per
  // serving counter worker (>= 1; == 1 would mean it stayed serial and < 1
  // that prepare never counted).
  EXPECT_GE(st.prepare.counter_solver_rebuilds, 1u);
  EXPECT_LE(st.prepare.counter_solver_rebuilds, 3u);
}

// The seed-fixed chi-square regression through the parallel prepare()
// path lives with the other statistics-heavy uniformity checks in
// tests/test_uniformity.cpp (excluded from the tier1 quick gate, included
// in the tsan preset), keeping this suite fast.

}  // namespace
}  // namespace unigen
