// Tests for projection-aware branching and the priority-local XOR
// reduction (Solver::reduce_priority_local_xors) — the machinery that makes
// BSAT on hash-constrained formulas tractable.  Correctness is the point
// here: replacing the S-local XOR rows by their reduced basis and removing
// pivots from branching must never change the solution space.

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "hashing/xor_hash.hpp"
#include "sat/enumerator.hpp"

namespace unigen {
namespace {

using test::brute_force_count;
using test::brute_force_projected_count;
using test::random_cnf;

TEST(PriorityBranching, VerdictUnchanged) {
  Rng rng(7);
  for (int round = 0; round < 20; ++round) {
    const Cnf cnf = random_cnf(10, 42, 3, rng);
    Solver plain;
    plain.load(cnf);
    const lbool expect = plain.solve();

    Solver prio;
    prio.set_priority_vars({0, 1, 2, 3});
    prio.load(cnf);
    EXPECT_EQ(prio.solve(), expect) << "round " << round;
  }
}

TEST(PriorityBranching, ModelStillValid) {
  Rng rng(11);
  const Cnf cnf = random_cnf(12, 30, 3, rng);
  Solver s;
  s.set_priority_vars({2, 3, 5, 7, 11});
  s.load(cnf);
  ASSERT_EQ(s.solve(), lbool::True);
  EXPECT_TRUE(cnf.satisfied_by(s.model()));
}

/// Random formula with XOR rows drawn over a designated sampling set —
/// exactly the shape UniGen's hashed queries have.
Cnf hashed_shape_formula(Var n, const std::vector<Var>& s, std::size_t m,
                         Rng& rng) {
  Cnf cnf = random_cnf(n, static_cast<std::size_t>(n) * 2, 3, rng);
  const XorHash h = draw_xor_hash(s, m, rng);
  h.conjoin_to(cnf);
  cnf.set_sampling_set(s);
  return cnf;
}

class PriorityGaussFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PriorityGaussFuzz, ProjectedCountsSurviveReduction) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2917 + 3);
  const std::vector<Var> s{0, 1, 2, 3, 4, 5};
  for (std::size_t m : {1u, 3u, 5u, 7u}) {
    const Cnf cnf = hashed_shape_formula(10, s, m, rng);
    const std::uint64_t expect = brute_force_projected_count(cnf, s);

    Solver solver;
    solver.load(cnf);
    EnumerateOptions opts;
    opts.projection = s;  // enumerate_models sets the priority vars
    opts.store_models = true;
    const auto result = enumerate_models(solver, opts);
    ASSERT_TRUE(result.exhausted);
    EXPECT_EQ(result.count, expect)
        << "seed=" << GetParam() << " m=" << m;
    for (const auto& model : result.models)
      EXPECT_TRUE(cnf.satisfied_by(model));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, PriorityGaussFuzz,
                         ::testing::Range(0, 20));

class PriorityGaussMixedFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PriorityGaussMixedFuzz, MixedLocalAndGlobalXors) {
  // XOR rows both inside and straddling the priority set: only the local
  // ones are eligible for basis replacement; the rest must stay intact.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 193 + 7);
  const std::vector<Var> s{0, 1, 2, 3};
  Cnf cnf = random_cnf(9, 16, 3, rng);
  for (int i = 0; i < 3; ++i) {
    std::vector<Var> local;
    for (const Var v : s)
      if (rng.flip()) local.push_back(v);
    if (local.empty()) local.push_back(s[0]);
    cnf.add_xor(std::move(local), rng.flip());
  }
  for (int i = 0; i < 2; ++i) {
    std::vector<Var> global;
    for (Var v = 0; v < 9; ++v)
      if (rng.flip()) global.push_back(v);
    if (global.empty()) global.push_back(8);
    cnf.add_xor(std::move(global), rng.flip());
  }
  const std::uint64_t expect = brute_force_projected_count(cnf, s);

  Solver solver;
  solver.load(cnf);
  EnumerateOptions opts;
  opts.projection = s;
  opts.store_models = false;
  const auto result = enumerate_models(solver, opts);
  ASSERT_TRUE(result.exhausted);
  EXPECT_EQ(result.count, expect) << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, PriorityGaussMixedFuzz,
                         ::testing::Range(0, 20));

TEST(PriorityGauss, InconsistentLocalSystemIsUnsat) {
  Cnf cnf(6);
  cnf.add_clause({Lit(4, false), Lit(5, false)});
  cnf.add_xor({0, 1}, true);
  cnf.add_xor({1, 2}, true);
  cnf.add_xor({0, 2}, true);  // sums to 0 = 1
  Solver solver;
  solver.set_priority_vars({0, 1, 2});
  solver.load(cnf);
  EXPECT_EQ(solver.solve(), lbool::False);
}

TEST(PriorityGauss, AllXorsOutsidePrioritySetStillWork) {
  // Regression: when no XOR row is local to the priority set, the rows
  // must survive the (aborted) partitioning untouched.
  Cnf cnf(8);
  cnf.add_xor({4, 5, 6}, true);
  cnf.add_xor({5, 6, 7}, false);
  cnf.add_clause({Lit(0, false), Lit(1, false)});
  const std::uint64_t expect = brute_force_count(cnf);

  Solver solver;
  solver.set_priority_vars({0, 1});
  solver.load(cnf);
  EnumerateOptions opts;
  opts.store_models = false;
  // Full enumeration over all vars, but priority on {0,1}.
  const auto result = enumerate_models(solver, opts);
  ASSERT_TRUE(result.exhausted);
  EXPECT_EQ(result.count, expect);
}

TEST(PriorityGauss, RepeatedSolvesAfterReduction) {
  // The reduction runs once; later incremental solves (blocking clauses,
  // assumptions) must behave normally.
  Rng rng(23);
  const std::vector<Var> s{0, 1, 2, 3, 4};
  const Cnf cnf = hashed_shape_formula(9, s, 2, rng);
  Solver solver;
  solver.load(cnf);
  EnumerateOptions opts;
  opts.projection = s;
  opts.max_models = 2;
  opts.store_models = true;
  const auto first = enumerate_models(solver, opts);
  if (first.count == 2) {
    // Keep going on the same solver: still sound.
    EnumerateOptions more;
    more.projection = s;
    more.store_models = true;
    const auto rest = enumerate_models(solver, more);
    EXPECT_TRUE(rest.exhausted);
    EXPECT_EQ(first.count + rest.count, brute_force_projected_count(cnf, s));
  }
}

}  // namespace
}  // namespace unigen
