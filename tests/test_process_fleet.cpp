// Supervisor edge cases of the crash-isolated process fleet: a worker
// SIGKILL mid-task costs one byte-identical retry, a hang is caught by
// heartbeat silence, a task that keeps killing its worker is poisoned into
// the honest partial accounting, a missing worker binary degrades to the
// in-process pool, and a cancelled call leaves the fleet reusable.
//
// All crash/hang scenarios are driven by the deterministic process-level
// fault plan (UNIGEN_WORKERD_FAULTS, keyed on (task id, attempt)), so they
// fire identically on every machine — no timing races.  Only an externally
// delivered `kill -9` (via ProcessFleet::worker_pids) is inherently racy,
// and that test asserts recovery, not byte equality of the interleaving.

#include <gtest/gtest.h>

#include <csignal>
#include <thread>

#include "core/unigen.hpp"
#include "counting/approxmc.hpp"
#include "helpers.hpp"
#include "service/process_fleet.hpp"
#include "service/sampler_pool.hpp"

namespace unigen {
namespace {

/// 504 models over 10 vars — above hiThresh(ε=6) and pivot(ε=0.8), so both
/// the sampling pool and the counter run in hashed mode and the workers
/// actually solve.
Cnf hashed_mode_formula() {
  Cnf cnf(10);
  cnf.add_clause({Lit(0, false), Lit(1, false), Lit(2, false)});
  cnf.add_clause({Lit(3, false), Lit(4, true)});
  cnf.add_clause({Lit(5, false), Lit(6, false), Lit(7, true)});
  cnf.add_clause({Lit(8, false), Lit(9, false), Lit(0, true)});
  return cnf;
}

SamplerPoolOptions fleet_pool_options(std::size_t threads, std::uint64_t seed,
                                      const std::string& fault_plan = {}) {
  SamplerPoolOptions o;
  o.num_threads = threads;
  o.seed = seed;
  o.unigen.fleet.backend = ExecBackend::kProcessFleet;
  o.unigen.fleet.fault_plan = fault_plan;
  return o;
}

SamplerPoolOptions inproc_pool_options(std::size_t threads,
                                       std::uint64_t seed) {
  SamplerPoolOptions o;
  o.num_threads = threads;
  o.seed = seed;
  return o;
}

void expect_same_results(const std::vector<SampleResult>& a,
                         const std::vector<SampleResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].status, b[i].status) << "request " << i;
    EXPECT_EQ(a[i].witness, b[i].witness) << "request " << i;
  }
}

TEST(ProcessFleet, CountMatchesInProcessAcrossWorkerCounts) {
  const Cnf cnf = hashed_mode_formula();
  ApproxMcOptions base;
  Rng ref_rng(4242);
  const ApproxMcResult reference = approx_count(cnf, base, ref_rng);
  ASSERT_TRUE(reference.valid);
  for (const std::size_t workers : {1u, 2u, 4u}) {
    ApproxMcOptions o = base;
    o.fleet.backend = ExecBackend::kProcessFleet;
    o.fleet.num_workers = workers;
    Rng rng(4242);
    const ApproxMcResult got = approx_count(cnf, o, rng);
    ASSERT_TRUE(got.valid) << workers << " workers";
    EXPECT_EQ(got.cell_count, reference.cell_count) << workers << " workers";
    EXPECT_EQ(got.hash_count, reference.hash_count) << workers << " workers";
    EXPECT_EQ(got.exact, reference.exact);
    // The caller's rng advanced identically (same fork discipline).
    Rng probe_a = ref_rng;
    Rng probe_b = rng;
    EXPECT_EQ(probe_a(), probe_b()) << workers << " workers";
  }
}

TEST(ProcessFleet, CountSurvivesWorkerKillMidIteration) {
  const Cnf cnf = hashed_mode_formula();
  ApproxMcOptions base;
  Rng ref_rng(99);
  const ApproxMcResult reference = approx_count(cnf, base, ref_rng);
  ASSERT_TRUE(reference.valid);
  // Iterations 0 and 3 SIGKILL their worker on the first attempt; the
  // retries (attempt 1) run clean and byte-identical.
  ApproxMcOptions o = base;
  o.fleet.backend = ExecBackend::kProcessFleet;
  o.fleet.num_workers = 2;
  o.fleet.fault_plan =
      ProcessFaultPlan().kill_task(0).kill_task(3).to_env();
  Rng rng(99);
  const ApproxMcResult got = approx_count(cnf, o, rng);
  ASSERT_TRUE(got.valid);
  EXPECT_EQ(got.cell_count, reference.cell_count);
  EXPECT_EQ(got.hash_count, reference.hash_count);
}

TEST(ProcessFleet, SampleStreamsMatchInProcessPool) {
  const Cnf cnf = hashed_mode_formula();
  constexpr std::uint64_t kSeed = 777;
  constexpr std::size_t kRequests = 24;
  std::vector<SampleResult> reference;
  {
    SamplerPool pool(cnf, inproc_pool_options(2, kSeed));
    reference = pool.sample_many(kRequests);
  }
  for (const std::size_t workers : {1u, 2u, 4u}) {
    SamplerPoolOptions o = fleet_pool_options(2, kSeed);
    o.unigen.fleet.num_workers = workers;
    SamplerPool pool(cnf, o);
    ASSERT_TRUE(pool.prepare());
    ASSERT_NE(pool.fleet(), nullptr)
        << "fleet backend should come up (unigen_workerd next to the test "
           "binary)";
    const auto got = pool.sample_many(kRequests);
    expect_same_results(reference, got);
  }
}

TEST(ProcessFleet, KilledSampleRequestRetriesByteIdentically) {
  const Cnf cnf = hashed_mode_formula();
  constexpr std::uint64_t kSeed = 31;
  constexpr std::size_t kRequests = 12;
  std::vector<SampleResult> reference;
  {
    SamplerPool pool(cnf, inproc_pool_options(2, kSeed));
    reference = pool.sample_many(kRequests);
  }
  // Request streams start at 1 (stream 0 = prepare); kill the workers
  // serving streams 2 and 7 on their first attempt.
  SamplerPool pool(cnf, fleet_pool_options(
                            2, kSeed,
                            ProcessFaultPlan().kill_task(2).kill_task(7)
                                .to_env()));
  ASSERT_TRUE(pool.prepare());
  ASSERT_NE(pool.fleet(), nullptr);
  const auto got = pool.sample_many(kRequests);
  expect_same_results(reference, got);
  const FleetStats& fs = pool.fleet()->stats();
  EXPECT_GE(fs.crashes, 2u);
  EXPECT_GE(fs.redispatches, 2u);
  EXPECT_GE(fs.respawns, 1u);
  EXPECT_EQ(fs.poisoned_tasks, 0u);
}

TEST(ProcessFleet, HungWorkerIsKilledByHeartbeatSilenceAndReplaced) {
  const Cnf cnf = hashed_mode_formula();
  constexpr std::uint64_t kSeed = 55;
  constexpr std::size_t kRequests = 8;
  std::vector<SampleResult> reference;
  {
    SamplerPool pool(cnf, inproc_pool_options(2, kSeed));
    reference = pool.sample_many(kRequests);
  }
  SamplerPoolOptions o = fleet_pool_options(
      2, kSeed, ProcessFaultPlan().sleep_task(3).to_env());
  o.unigen.fleet.heartbeat_interval_s = 0.05;
  o.unigen.fleet.heartbeat_timeout_s = 0.8;
  SamplerPool pool(cnf, o);
  ASSERT_TRUE(pool.prepare());
  ASSERT_NE(pool.fleet(), nullptr);
  const auto got = pool.sample_many(kRequests);
  expect_same_results(reference, got);
  const FleetStats& fs = pool.fleet()->stats();
  EXPECT_GE(fs.hang_kills, 1u);
  EXPECT_GE(fs.redispatches, 1u);
}

TEST(ProcessFleet, RepeatedKillsPoisonTheTaskIntoPartialAccounting) {
  const Cnf cnf = hashed_mode_formula();
  constexpr std::size_t kRequests = 6;
  // Stream 4 kills its worker on attempts 0, 1 and 2 — every attempt the
  // fleet is willing to make — so the request is poisoned; the other five
  // are served normally.
  SamplerPoolOptions o = fleet_pool_options(
      2, 13,
      ProcessFaultPlan().kill_task(4, 0).kill_task(4, 1).kill_task(4, 2)
          .to_env());
  o.unigen.fleet.max_task_attempts = 3;
  SamplerPool pool(cnf, o);
  ASSERT_TRUE(pool.prepare());
  ASSERT_NE(pool.fleet(), nullptr);
  const auto out = pool.sample_many_within(kRequests, Budget::unlimited());
  EXPECT_EQ(out.status, RequestStatus::kPartial);
  ASSERT_EQ(out.samples.size(), kRequests);
  // Stream k of this call is request k-1 (streams start at 1).
  for (std::size_t k = 0; k < kRequests; ++k) {
    if (k + 1 == 4) {
      EXPECT_EQ(out.samples[k].status, SampleResult::Status::kTimeout)
          << "poisoned request must fail honestly";
    } else {
      EXPECT_NE(out.samples[k].status, SampleResult::Status::kTimeout)
          << "request " << k << " should have been served";
    }
  }
  const FleetStats& fs = pool.fleet()->stats();
  EXPECT_EQ(fs.poisoned_tasks, 1u);
  EXPECT_GE(fs.crashes, 3u);
  // The pool survived the crash loop and keeps serving.
  const auto after = pool.sample_many_within(4, Budget::unlimited());
  EXPECT_EQ(after.status, RequestStatus::kComplete);
}

TEST(ProcessFleet, MissingWorkerBinaryFallsBackInProcess) {
  const Cnf cnf = hashed_mode_formula();
  constexpr std::uint64_t kSeed = 123;
  std::vector<SampleResult> reference;
  {
    SamplerPool pool(cnf, inproc_pool_options(2, kSeed));
    reference = pool.sample_many(10);
  }
  SamplerPoolOptions o = fleet_pool_options(2, kSeed);
  o.unigen.fleet.workerd_path = "/nonexistent/unigen_workerd";
  SamplerPool pool(cnf, o);
  ASSERT_TRUE(pool.prepare());
  EXPECT_EQ(pool.fleet(), nullptr) << "spawn must fail gracefully";
  const auto got = pool.sample_many(10);
  expect_same_results(reference, got);

  // Same degradation on the counting side.
  ApproxMcOptions co;
  co.fleet.backend = ExecBackend::kProcessFleet;
  co.fleet.workerd_path = "/nonexistent/unigen_workerd";
  Rng crng(7);
  const ApproxMcResult count = approx_count(cnf, co, crng);
  ApproxMcOptions ref_co;
  Rng ref_crng(7);
  const ApproxMcResult ref_count = approx_count(cnf, ref_co, ref_crng);
  ASSERT_TRUE(count.valid);
  EXPECT_EQ(count.cell_count, ref_count.cell_count);
  EXPECT_EQ(count.hash_count, ref_count.hash_count);
}

TEST(ProcessFleet, CancelMidCallLeavesFleetReusable) {
  const Cnf cnf = hashed_mode_formula();
  constexpr std::uint64_t kSeed = 400;
  constexpr std::size_t kFirst = 10;
  constexpr std::size_t kSecond = 10;
  // Reference ledger: a clean pool's streams [1+kFirst, 1+kFirst+kSecond).
  std::vector<SampleResult> reference;
  {
    SamplerPool pool(cnf, inproc_pool_options(2, kSeed));
    pool.sample_many(kFirst);
    reference = pool.sample_many(kSecond);
  }
  // Stream 1 (the first request) sleeps forever, so the call is guaranteed
  // to still be in flight when the token trips — no timing race.  The
  // generous heartbeat ceiling keeps the hang police out of this test.
  SamplerPoolOptions o = fleet_pool_options(
      2, kSeed, ProcessFaultPlan().sleep_task(1).to_env());
  o.unigen.fleet.heartbeat_timeout_s = 30.0;
  SamplerPool pool(cnf, o);
  ASSERT_TRUE(pool.prepare());
  ASSERT_NE(pool.fleet(), nullptr);
  // Trip the token mid-call from a helper thread; however many requests
  // were served, the call must report kCancelled and stamp unserved slots
  // honestly...
  CancelToken token;
  Budget cut;
  cut.cancel = &token;
  std::thread tripper([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    token.cancel();
  });
  const auto first = pool.sample_many_within(kFirst, cut);
  tripper.join();
  EXPECT_EQ(first.status, RequestStatus::kCancelled);
  for (const SampleResult& s : first.samples) {
    if (!s.ok()) {
      EXPECT_TRUE(s.status == SampleResult::Status::kCancelled ||
                  s.status == SampleResult::Status::kFail ||
                  s.status == SampleResult::Status::kTimeout);
    }
  }
  // ...and the fleet stays usable: the stream ledger advanced by kFirst
  // whatever happened, so the follow-up call serves exactly the streams a
  // never-cancelled pool would.
  const auto second = pool.sample_many_within(kSecond, Budget::unlimited());
  EXPECT_EQ(second.status, RequestStatus::kComplete);
  expect_same_results(reference, second.samples);
}

TEST(ProcessFleet, ExternalKillOfIdleWorkerIsAbsorbed) {
  const Cnf cnf = hashed_mode_formula();
  constexpr std::uint64_t kSeed = 61;
  std::vector<SampleResult> reference;
  {
    SamplerPool pool(cnf, inproc_pool_options(2, kSeed));
    pool.sample_many(6);
    reference = pool.sample_many(6);
  }
  SamplerPool pool(cnf, fleet_pool_options(2, kSeed));
  ASSERT_TRUE(pool.prepare());
  ASSERT_NE(pool.fleet(), nullptr);
  const auto warm = pool.sample_many(6);
  ASSERT_EQ(warm.size(), 6u);
  // kill -9 a worker between calls; the supervisor must notice, respawn,
  // and serve the next call byte-identically — never crash or deadlock.
  const std::vector<int> pids = pool.fleet()->worker_pids();
  ASSERT_FALSE(pids.empty());
  ::kill(pids.front(), SIGKILL);
  const auto got = pool.sample_many(6);
  expect_same_results(reference, got);
}

TEST(ProcessFleet, BatchRequestsMatchInProcessUnderCrashes) {
  const Cnf cnf = hashed_mode_formula();
  constexpr std::uint64_t kSeed = 88;
  std::vector<BatchResult> reference;
  {
    SamplerPool pool(cnf, inproc_pool_options(2, kSeed));
    reference = pool.sample_batches(8, 5);
  }
  SamplerPool pool(cnf, fleet_pool_options(
                            2, kSeed,
                            ProcessFaultPlan().kill_task(3).to_env()));
  ASSERT_TRUE(pool.prepare());
  ASSERT_NE(pool.fleet(), nullptr);
  const auto got = pool.sample_batches(8, 5);
  ASSERT_EQ(got.size(), reference.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].status, reference[i].status) << "request " << i;
    EXPECT_EQ(got[i].models, reference[i].models) << "request " << i;
  }
  EXPECT_GE(pool.fleet()->stats().crashes, 1u);
}

}  // namespace
}  // namespace unigen
