// Tests for the seedable RNG: determinism, range contracts, coarse
// statistical sanity.

#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"

namespace unigen {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, ZeroSeedIsUsable) {
  Rng r(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(r());
  EXPECT_GT(seen.size(), 95u);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, (1ull << 60)}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng r(3);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, BetweenInclusiveBounds) {
  Rng r(9);
  for (int i = 0; i < 500; ++i) {
    const auto x = r.between(5, 8);
    EXPECT_GE(x, 5u);
    EXPECT_LE(x, 8u);
  }
  // All four values should appear.
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(r.between(5, 8));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng r(13);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[r.below(kBuckets)];
  for (const int c : counts) {
    EXPECT_GT(c, kDraws / kBuckets * 0.9);
    EXPECT_LT(c, kDraws / kBuckets * 1.1);
  }
}

TEST(Rng, FlipIsFair) {
  Rng r(17);
  int heads = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) heads += r.flip();
  EXPECT_NEAR(static_cast<double>(heads) / kDraws, 0.5, 0.01);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng r(19);
  constexpr int kDraws = 100000;
  for (const double p : {0.1, 0.25, 0.75}) {
    int hits = 0;
    for (int i = 0; i < kDraws; ++i) hits += r.flip(p);
    EXPECT_NEAR(static_cast<double>(hits) / kDraws, p, 0.01);
  }
}

TEST(Rng, Uniform01InRange) {
  Rng r(21);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = r.uniform01();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ShufflePreservesElements) {
  Rng r(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto w = v;
  r.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng r(29);
  std::vector<int> v(20);
  for (int i = 0; i < 20; ++i) v[static_cast<std::size_t>(i)] = i;
  auto w = v;
  r.shuffle(w);
  EXPECT_NE(v, w);  // probability 1/20! of spurious failure
}

TEST(Rng, BetweenFullRangeDoesNotOverflow) {
  // hi - lo + 1 wraps to 0 here; the old code fed that to below() (mod 0).
  Rng r(33);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i)
    seen.insert(r.between(0, ~std::uint64_t{0}));
  EXPECT_GT(seen.size(), 195u);  // effectively raw 64-bit draws
}

TEST(Rng, BetweenDegenerateRangeIsConstant) {
  Rng r(35);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(r.between(7, 7), 7u);
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(r.between(~std::uint64_t{0}, ~std::uint64_t{0}),
              ~std::uint64_t{0});
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(31);
  Rng child = a.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == child()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkStreamIsKeyedAndParentInvariant) {
  Rng a(37), b(37);
  // Same parent state + same stream index -> identical child, and forking
  // does not advance the parent.
  Rng c1 = a.fork_stream(5);
  Rng c2 = b.fork_stream(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(c1(), c2());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, ForkStreamChildrenAreDecorrelated) {
  Rng parent(41);
  Rng x = parent.fork_stream(0);
  Rng y = parent.fork_stream(1);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (x() == y()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, JumpDivergesFromUnjumpedStream) {
  Rng a(43), b(43);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
  // Deterministic: jumping two equal generators keeps them equal.
  Rng c(43), d(43);
  c.jump();
  d.jump();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(c(), d());
}

}  // namespace
}  // namespace unigen
