// Tests for the parallel witness-generation service: cross-thread-count
// determinism, one solver build per worker, witness validity, and the
// trivial/UNSAT fast paths.

#include <gtest/gtest.h>

#include <set>

#include "core/unigen.hpp"
#include "helpers.hpp"
#include "service/sampler_pool.hpp"

namespace unigen {
namespace {

/// 504 models over 10 vars — comfortably above hiThresh(ε=6) = 89, so the
/// pool runs in hashed mode and the workers actually solve.
Cnf hashed_mode_formula() {
  Cnf cnf(10);
  cnf.add_clause({Lit(0, false), Lit(1, false), Lit(2, false)});
  cnf.add_clause({Lit(3, false), Lit(4, true)});
  cnf.add_clause({Lit(5, false), Lit(6, false), Lit(7, true)});
  cnf.add_clause({Lit(8, false), Lit(9, false), Lit(0, true)});
  return cnf;
}

SamplerPoolOptions pool_options(std::size_t threads, std::uint64_t seed) {
  SamplerPoolOptions o;
  o.num_threads = threads;
  o.seed = seed;
  return o;
}

void expect_same_results(const std::vector<SampleResult>& a,
                         const std::vector<SampleResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].status, b[i].status) << "request " << i;
    EXPECT_EQ(a[i].witness, b[i].witness) << "request " << i;
  }
}

TEST(SamplerPool, HashedModeProducesValidWitnesses) {
  const Cnf cnf = hashed_mode_formula();
  SamplerPool pool(cnf, pool_options(4, 101));
  ASSERT_TRUE(pool.prepare());
  EXPECT_EQ(pool.prepared().mode, UniGenPrepared::Mode::kHashed);
  EXPECT_EQ(pool.num_threads(), 4u);
  const auto results = pool.sample_many(48);
  ASSERT_EQ(results.size(), 48u);
  int ok = 0;
  for (const auto& r : results) {
    if (r.ok()) {
      ++ok;
      EXPECT_TRUE(cnf.satisfied_by(r.witness));
    } else {
      EXPECT_EQ(r.status, SampleResult::Status::kFail);
    }
  }
  EXPECT_GT(ok, 0);
  const auto st = pool.stats();
  EXPECT_EQ(st.requests, 48u);
  EXPECT_EQ(st.samples_ok, static_cast<std::uint64_t>(ok));
}

TEST(SamplerPool, ByteIdenticalAcrossThreadCounts) {
  const Cnf cnf = hashed_mode_formula();
  constexpr std::uint64_t kSeed = 777;
  constexpr std::size_t kRequests = 40;
  std::vector<SampleResult> reference;
  {
    SamplerPool pool(cnf, pool_options(1, kSeed));
    reference = pool.sample_many(kRequests);
  }
  for (const std::size_t threads : {2u, 4u, 7u}) {
    SamplerPool pool(cnf, pool_options(threads, kSeed));
    const auto got = pool.sample_many(kRequests);
    expect_same_results(reference, got);
  }
}

TEST(SamplerPool, StreamsContinueAcrossCalls) {
  // Two calls of 20 on one pool equal one call of 40 on a fresh pool: the
  // request-stream counter is global, not per-call.
  const Cnf cnf = hashed_mode_formula();
  SamplerPool split(cnf, pool_options(3, 55));
  auto first = split.sample_many(20);
  const auto second = split.sample_many(20);
  first.insert(first.end(), second.begin(), second.end());
  SamplerPool whole(cnf, pool_options(2, 55));
  expect_same_results(first, whole.sample_many(40));
}

TEST(SamplerPool, OneSolverBuildPerWorker) {
  const Cnf cnf = hashed_mode_formula();
  SamplerPool pool(cnf, pool_options(4, 11));
  ASSERT_TRUE(pool.prepare());
  pool.sample_many(64);
  pool.sample_many(64);  // rebuild count must not grow with request count
  const auto st = pool.stats();
  ASSERT_EQ(st.workers.size(), 4u);
  std::uint64_t served_total = 0;
  std::size_t serving_workers = 0;
  for (std::size_t w = 0; w < st.workers.size(); ++w) {
    served_total += st.workers[w].requests_served;
    if (st.workers[w].requests_served > 0) {
      ++serving_workers;
      // The invariant under test: a worker builds its solver exactly once
      // no matter how many requests it serves.
      EXPECT_EQ(st.workers[w].solver_rebuilds, 1u) << "worker " << w;
      EXPECT_GT(st.workers[w].sample_bsat_calls, 0u) << "worker " << w;
    } else {
      // A worker with no sampling requests may still own a built engine:
      // prepare's counting fan-out runs on the same workers since the warm
      // handoff.  What cannot happen is more than one build.
      EXPECT_LE(st.workers[w].solver_rebuilds, 1u) << "worker " << w;
    }
  }
  EXPECT_EQ(served_total, 128u);
  // Work is pulled from an atomic cursor with no fairness guarantee, so on
  // an oversubscribed machine a worker may legitimately never win a
  // request — assert participation only where scheduling guarantees it.
  EXPECT_GE(serving_workers, 1u);
}

TEST(SamplerPool, BatchesAreValidDistinctAndDeterministic) {
  const Cnf cnf = hashed_mode_formula();
  constexpr std::uint64_t kSeed = 303;
  std::vector<BatchResult> reference;
  {
    SamplerPool pool(cnf, pool_options(1, kSeed));
    reference = pool.sample_batches(12, 8);
  }
  ASSERT_EQ(reference.size(), 12u);
  int ok = 0;
  for (const auto& b : reference) {
    if (!b.ok()) continue;
    ++ok;
    EXPECT_LE(b.models.size(), 8u);
    std::set<Model> distinct;
    for (const auto& m : b.models) {
      EXPECT_TRUE(cnf.satisfied_by(m));
      distinct.insert(m);
    }
    EXPECT_EQ(distinct.size(), b.models.size());
  }
  EXPECT_GT(ok, 0);
  SamplerPool pool4(cnf, pool_options(4, kSeed));
  const auto got = pool4.sample_batches(12, 8);
  ASSERT_EQ(got.size(), reference.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].status, reference[i].status) << "request " << i;
    EXPECT_EQ(got[i].models, reference[i].models) << "request " << i;
  }
}

TEST(SamplerPool, TrivialModeServedInline) {
  Cnf cnf(3);
  cnf.add_clause({Lit(0, false), Lit(1, false), Lit(2, false)});  // 7 models
  SamplerPool pool(cnf, pool_options(4, 13));
  ASSERT_TRUE(pool.prepare());
  EXPECT_EQ(pool.prepared().mode, UniGenPrepared::Mode::kTrivial);
  const auto results = pool.sample_many(50);
  for (const auto& r : results) {
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(cnf.satisfied_by(r.witness));
  }
  // Deterministic across thread counts here too.
  SamplerPool pool1(cnf, pool_options(1, 13));
  expect_same_results(results, pool1.sample_many(50));
  // No worker engines were ever built.
  for (const auto& w : pool.stats().workers)
    EXPECT_EQ(w.solver_rebuilds, 0u);
}

TEST(SamplerPool, UnsatModeReportsUnsat) {
  Cnf cnf(1);
  cnf.add_clause({Lit(0, false)});
  cnf.add_clause({Lit(0, true)});
  SamplerPool pool(cnf, pool_options(2, 17));
  EXPECT_TRUE(pool.prepare());
  for (const auto& r : pool.sample_many(5))
    EXPECT_EQ(r.status, SampleResult::Status::kUnsat);
  for (const auto& b : pool.sample_batches(3, 4))
    EXPECT_EQ(b.status, SampleResult::Status::kUnsat);
}

TEST(SamplerPool, CoverageMatchesWitnessSpace) {
  // The parallel path must still be an almost-uniform sampler: over many
  // requests nearly the whole witness space appears.
  const Cnf cnf = hashed_mode_formula();
  const auto truth = test::brute_force_models(cnf);
  SamplerPool pool(cnf, pool_options(4, 29));
  ASSERT_TRUE(pool.prepare());
  std::set<Model> seen;
  for (const auto& r : pool.sample_many(3000))
    if (r.ok()) seen.insert(r.witness);
  EXPECT_GE(static_cast<double>(seen.size()),
            0.9 * static_cast<double>(truth.size()));
}

TEST(SamplerPool, PreparedStateMatchesUniGen) {
  // The pool's one-time phase is the same lines 1–11 UniGen runs: same
  // thresholds and same q for the same seed.
  const Cnf cnf = hashed_mode_formula();
  SamplerPool pool(cnf, pool_options(2, 71));
  ASSERT_TRUE(pool.prepare());
  const auto st = pool.stats();
  EXPECT_EQ(st.prepare.pivot, 40u);
  EXPECT_EQ(st.prepare.hi_thresh, 89u);
  EXPECT_GT(st.prepare.q, 0);
  EXPECT_GT(st.prepare.prepare_bsat_calls, 0u);
}

TEST(SamplerPool, DegenerateBudgetStampsHonestlyBeforeAnyWork) {
  const Cnf cnf = hashed_mode_formula();
  SamplerPool pool(cnf, pool_options(2, 31));
  // A born-expired deadline: every slot reports kTimeout, zero BSAT calls
  // (prepare never ran), and the stream ledger still advances.
  const SampleManyResult dead =
      pool.sample_many_within(5, Budget::within_seconds(0.0));
  EXPECT_EQ(dead.status, RequestStatus::kTimedOut);
  ASSERT_EQ(dead.samples.size(), 5u);
  for (const auto& r : dead.samples)
    EXPECT_EQ(r.status, SampleResult::Status::kTimeout);
  EXPECT_EQ(pool.stats().prepare.prepare_bsat_calls, 0u);
  EXPECT_EQ(pool.stats().samples_timed_out, 5u);

  CancelToken token;
  token.cancel();
  Budget cancelled;
  cancelled.cancel = &token;
  const SampleBatchesResult dead_batches =
      pool.sample_batches_within(3, 4, cancelled);
  EXPECT_EQ(dead_batches.status, RequestStatus::kCancelled);
  ASSERT_EQ(dead_batches.batches.size(), 3u);
  for (const auto& b : dead_batches.batches)
    EXPECT_EQ(b.status, SampleResult::Status::kCancelled);

  // The pool is untouched: a live follow-up request serves completely, and
  // its streams resume after the 5 + 3 consumed by the dead requests —
  // identical to a fresh pool whose first 8 streams were served normally.
  const SampleManyResult live =
      pool.sample_many_within(4, Budget::unlimited());
  EXPECT_EQ(live.status, RequestStatus::kComplete);

  SamplerPool fresh(cnf, pool_options(2, 31));
  const auto all = fresh.sample_many_within(12, Budget::unlimited());
  ASSERT_EQ(all.samples.size(), 12u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(live.samples[i].status, all.samples[8 + i].status);
    EXPECT_EQ(live.samples[i].witness, all.samples[8 + i].witness);
  }
}

}  // namespace
}  // namespace unigen
