// Tests for the multi-formula session server: canonical keying through the
// simplifier, LRU eviction order and determinism, warm-path byte-identity
// against fresh pools across thread counts, cancel-mid-request
// reusability, and the warm handoff's engine-build accounting
// (IncrementalBsat::total_constructions).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "helpers.hpp"
#include "sat/incremental_bsat.hpp"
#include "service/sampling_server.hpp"
#include "service/session_registry.hpp"

namespace unigen {
namespace {

/// 504 models over 10 vars: hashed mode at ε=6, so sessions actually start
/// their pools and the handoff has something to hand off.
Cnf hashed_formula() {
  Cnf cnf(10);
  cnf.add_clause({Lit(0, false), Lit(1, false), Lit(2, false)});
  cnf.add_clause({Lit(3, false), Lit(4, true)});
  cnf.add_clause({Lit(5, false), Lit(6, false), Lit(7, true)});
  cnf.add_clause({Lit(8, false), Lit(9, false), Lit(0, true)});
  return cnf;
}

/// A second, structurally different hashed-mode formula.
Cnf hashed_formula_b() {
  Cnf cnf(10);
  cnf.add_clause({Lit(0, false), Lit(1, false)});
  cnf.add_clause({Lit(2, false), Lit(3, false), Lit(4, false)});
  cnf.add_clause({Lit(5, true), Lit(6, false)});
  cnf.add_clause({Lit(7, false), Lit(8, false), Lit(9, true)});
  return cnf;
}

Cnf trivial_formula() {
  Cnf cnf(3);
  cnf.add_clause({Lit(0, false), Lit(1, false), Lit(2, false)});
  return cnf;
}

SessionRegistryOptions registry_options(std::size_t threads,
                                        std::uint64_t seed = 0x5E55) {
  SessionRegistryOptions o;
  o.pool.num_threads = threads;
  o.pool.seed = seed;
  return o;
}

void expect_same_results(const std::vector<SampleResult>& a,
                         const std::vector<SampleResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].status, b[i].status) << "request " << i;
    EXPECT_EQ(a[i].witness, b[i].witness) << "request " << i;
  }
}

TEST(SessionOptionsFingerprint, SplitsOnMeaningIgnoresDeployment) {
  const SamplerPoolOptions base;
  SamplerPoolOptions other = base;
  other.unigen.epsilon = 8.0;
  EXPECT_FALSE(fingerprint_session_options(base) ==
               fingerprint_session_options(other));
  other = base;
  other.seed = base.seed + 1;
  EXPECT_FALSE(fingerprint_session_options(base) ==
               fingerprint_session_options(other));
  other = base;
  other.unigen.simplify.enabled = false;
  EXPECT_FALSE(fingerprint_session_options(base) ==
               fingerprint_session_options(other));
  // Thread count and wall-clock budgets are deployment shape: the service
  // output is byte-identical across them, so they must not split sessions.
  other = base;
  other.num_threads = 7;
  other.unigen.bsat_timeout_s = 1.0;
  other.unigen.prepare_timeout_s = 2.0;
  EXPECT_EQ(fingerprint_session_options(base),
            fingerprint_session_options(other));
}

TEST(SessionKey, PermutedInputSharesTheCanonicalKey) {
  const SamplerPoolOptions opts;
  const Cnf a = hashed_formula();
  Cnf b(10);  // same clauses, different order and literal order
  b.add_clause({Lit(9, false), Lit(0, true), Lit(8, false)});
  b.add_clause({Lit(4, true), Lit(3, false)});
  b.add_clause({Lit(2, false), Lit(0, false), Lit(1, false)});
  b.add_clause({Lit(6, false), Lit(7, true), Lit(5, false)});
  EXPECT_EQ(make_session_key(a, opts).key, make_session_key(b, opts).key);
  EXPECT_FALSE(make_session_key(a, opts).key ==
               make_session_key(hashed_formula_b(), opts).key);
}

TEST(SessionRegistry, WarmHitReturnsTheSameSession) {
  SessionRegistry registry(registry_options(2));
  const Cnf cnf = hashed_formula();
  const AcquireResult cold = registry.acquire(cnf);
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold.warm);
  const AcquireResult warm = registry.acquire(cnf);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.warm);
  EXPECT_EQ(cold.session, warm.session);
  EXPECT_EQ(cold.key, warm.key);
  EXPECT_EQ(warm.session->acquisitions(), 2u);
  const auto st = registry.stats();
  EXPECT_EQ(st.requests, 2u);
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.sessions, 1u);
  EXPECT_GT(st.resident_bytes, 0u);
}

TEST(SessionRegistry, SyntacticVariantHitsThroughCanonicalKey) {
  // A duplicated clause changes the *raw* fingerprint but simplifies away,
  // so the canonical key matches — the two-level lookup must serve it from
  // the existing session (one extra canonicalization, zero extra prepares).
  SessionRegistry registry(registry_options(1));
  const Cnf cnf = hashed_formula();
  Cnf dup = hashed_formula();
  dup.add_clause({Lit(3, false), Lit(4, true)});
  ASSERT_FALSE(fingerprint_cnf(cnf) == fingerprint_cnf(dup));
  ASSERT_TRUE(registry.acquire(cnf).ok());
  const AcquireResult got = registry.acquire(dup);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got.warm);
  EXPECT_EQ(registry.stats().sessions, 1u);
}

TEST(SessionRegistry, LruEvictionOrderIsDeterministic) {
  const Cnf formulas[] = {hashed_formula(), hashed_formula_b(),
                          trivial_formula()};
  // Script: a, b, c (evicts a — LRU), a (evicts b), c (hit: c stayed warm
  // through a's re-registration).  Replayed twice; identical ledgers.
  std::vector<SessionRegistryStats> ledgers;
  for (int replay = 0; replay < 2; ++replay) {
    SessionRegistryOptions o = registry_options(1);
    o.max_sessions = 2;
    SessionRegistry registry(o);
    EXPECT_FALSE(registry.acquire(formulas[0]).warm);
    EXPECT_FALSE(registry.acquire(formulas[1]).warm);
    EXPECT_FALSE(registry.acquire(formulas[2]).warm);  // drops a
    EXPECT_FALSE(registry.acquire(formulas[0]).warm);  // miss: a was evicted
    EXPECT_TRUE(registry.acquire(formulas[2]).warm);   // c survived
    ledgers.push_back(registry.stats());
  }
  for (const auto& st : ledgers) {
    EXPECT_EQ(st.requests, 5u);
    EXPECT_EQ(st.hits, 1u);
    EXPECT_EQ(st.misses, 4u);
    EXPECT_EQ(st.evictions, 2u);
    EXPECT_EQ(st.sessions, 2u);
  }
}

TEST(SessionRegistry, WarmTouchProtectsFromEviction) {
  SessionRegistryOptions o = registry_options(1);
  o.max_sessions = 2;
  SessionRegistry registry(o);
  registry.acquire(hashed_formula());
  registry.acquire(hashed_formula_b());
  registry.acquire(hashed_formula());    // touch: a becomes most-recent
  registry.acquire(trivial_formula());   // must evict b, not a
  EXPECT_TRUE(registry.acquire(hashed_formula()).warm);
  EXPECT_FALSE(registry.acquire(hashed_formula_b()).warm);
}

TEST(SessionRegistry, ResidentByteCapEvictsButKeepsOne) {
  SessionRegistryOptions o = registry_options(1);
  o.max_resident_bytes = 1;  // every session is over budget on its own
  SessionRegistry registry(o);
  ASSERT_TRUE(registry.acquire(hashed_formula()).ok());
  EXPECT_EQ(registry.stats().sessions, 1u);  // never evict the only one
  ASSERT_TRUE(registry.acquire(hashed_formula_b()).ok());
  const auto st = registry.stats();
  EXPECT_EQ(st.sessions, 1u);
  EXPECT_EQ(st.evictions, 1u);
}

TEST(SessionRegistry, EvictAndClearSeams) {
  SessionRegistry registry(registry_options(1));
  const AcquireResult a = registry.acquire(hashed_formula());
  registry.acquire(trivial_formula());
  ASSERT_TRUE(registry.evict(a.key));
  EXPECT_FALSE(registry.evict(a.key));  // already gone
  EXPECT_EQ(registry.stats().sessions, 1u);
  EXPECT_FALSE(registry.acquire(hashed_formula()).warm);  // cold again
  registry.clear();
  EXPECT_EQ(registry.stats().sessions, 0u);
  EXPECT_EQ(registry.stats().resident_bytes, 0u);
}

TEST(SessionRegistry, FailedPrepareIsDroppedAndRetryable) {
  SessionRegistry registry(registry_options(1));
  Budget dead = Budget::within_seconds(0.0);  // already expired
  const AcquireResult failed = registry.acquire(hashed_formula(), dead);
  EXPECT_FALSE(failed.ok());
  auto st = registry.stats();
  EXPECT_EQ(st.prepare_failures, 1u);
  EXPECT_EQ(st.sessions, 0u);
  // The failure did not poison the key: a retry under a real budget works.
  const AcquireResult retry = registry.acquire(hashed_formula());
  ASSERT_TRUE(retry.ok());
  EXPECT_FALSE(retry.warm);
  EXPECT_EQ(registry.stats().sessions, 1u);
}

TEST(SessionRegistry, WarmPathByteIdenticalToFreshPoolAcrossThreads) {
  // The server contract: interleaved warm requests against a session are
  // byte-identical to one fresh pool serving the same per-formula request
  // script — at every thread count (streams continue across requests and
  // never depend on the serving schedule).
  const Cnf cnf = hashed_formula();
  std::vector<SampleResult> reference;
  {
    SamplerPool pool(cnf, registry_options(1).pool);
    for (int call = 0; call < 3; ++call) {
      const auto r = pool.sample_many(10);
      reference.insert(reference.end(), r.begin(), r.end());
    }
  }
  for (const std::size_t threads : {1u, 2u, 4u}) {
    SessionRegistry registry(registry_options(threads));
    std::vector<SampleResult> got;
    for (int call = 0; call < 3; ++call) {
      const AcquireResult a = registry.acquire(cnf);
      ASSERT_TRUE(a.ok());
      EXPECT_EQ(a.warm, call > 0);
      const auto r = a.session->pool().sample_many(10);
      got.insert(got.end(), r.begin(), r.end());
    }
    expect_same_results(reference, got);
  }
}

TEST(SessionRegistry, CancelMidRequestLeavesSessionReusable) {
  // A cancelled warm request reports honest statuses and consumes its
  // streams; the follow-up request matches a fresh pool that mirrored the
  // same cancelled call — the session survives cancellation bit-exactly.
  const Cnf cnf = hashed_formula();
  CancelToken token;
  token.cancel();
  Budget cancelled;
  cancelled.cancel = &token;

  SamplerPool reference(cnf, registry_options(1).pool);
  reference.sample_many(6);
  reference.sample_many_within(4, cancelled);
  const auto want = reference.sample_many(6);

  SessionRegistry registry(registry_options(2));
  const AcquireResult a = registry.acquire(cnf);
  ASSERT_TRUE(a.ok());
  a.session->pool().sample_many(6);
  const SampleManyResult cut =
      a.session->pool().sample_many_within(4, cancelled);
  EXPECT_EQ(cut.status, RequestStatus::kCancelled);
  for (const auto& s : cut.samples)
    EXPECT_EQ(s.status, SampleResult::Status::kCancelled);
  const AcquireResult again = registry.acquire(cnf);
  ASSERT_TRUE(again.warm);
  expect_same_results(want, again.session->pool().sample_many(6));
}

TEST(SessionRegistry, HandoffBuildsAtMostOneEnginePerWorker) {
  // The ownership refactor's observable: prepare + sampling on a width-1
  // session constructs exactly ONE IncrementalBsat — the easy-case engine,
  // adopted by worker 0, reused by the counting fan-out and every sample.
  // The pre-handoff design built a transient counting pool on top (2 per
  // worker).  Width-4 may build up to 4 (lazily, schedule-dependent).
  const Cnf cnf = hashed_formula();
  {
    const std::uint64_t before = IncrementalBsat::total_constructions();
    SamplerPool pool(cnf, registry_options(1).pool);
    ASSERT_TRUE(pool.prepare());
    ASSERT_EQ(pool.prepared().mode, UniGenPrepared::Mode::kHashed);
    pool.sample_many(16);
    EXPECT_EQ(IncrementalBsat::total_constructions() - before, 1u);
  }
  {
    const std::uint64_t before = IncrementalBsat::total_constructions();
    SamplerPool pool(cnf, registry_options(4).pool);
    ASSERT_TRUE(pool.prepare());
    pool.sample_many(16);
    EXPECT_LE(IncrementalBsat::total_constructions() - before, 4u);
    EXPECT_GE(IncrementalBsat::total_constructions() - before, 1u);
  }
}

TEST(SamplingServer, ColdWarmFlagsAndCount) {
  SamplingServerOptions so;
  so.registry = registry_options(2);
  SamplingServer server(so);
  const Cnf cnf = hashed_formula();
  const ServerSampleResponse cold = server.sample(cnf, 5);
  EXPECT_FALSE(cold.warm);
  EXPECT_EQ(cold.samples.size(), 5u);
  const ServerSampleResponse warm = server.sample(cnf, 5);
  EXPECT_TRUE(warm.warm);
  EXPECT_EQ(warm.key, cold.key);

  const ServerCountResponse hashed_count = server.count(cnf);
  EXPECT_TRUE(hashed_count.warm);
  EXPECT_EQ(hashed_count.status, RequestStatus::kComplete);
  EXPECT_FALSE(hashed_count.exact);
  EXPECT_GT(hashed_count.approx_log2_count, 0.0);

  const ServerCountResponse trivial_count = server.count(trivial_formula());
  EXPECT_FALSE(trivial_count.warm);
  EXPECT_TRUE(trivial_count.exact);
  EXPECT_NEAR(trivial_count.approx_log2_count, std::log2(7.0), 1e-9);

  Cnf unsat(1);
  unsat.add_clause({Lit(0, false)});
  unsat.add_clause({Lit(0, true)});
  const ServerCountResponse unsat_count = server.count(unsat);
  EXPECT_TRUE(unsat_count.unsat);
  EXPECT_EQ(server.stats().sessions, 3u);
}

TEST(SamplingServer, FailedPrepareStampsHonestSlots) {
  SamplingServerOptions so;
  so.registry = registry_options(1);
  SamplingServer server(so);
  CancelToken token;
  token.cancel();
  Budget cancelled;
  cancelled.cancel = &token;
  const ServerSampleResponse r =
      server.sample(hashed_formula(), 3, cancelled);
  EXPECT_EQ(r.status, RequestStatus::kCancelled);
  ASSERT_EQ(r.samples.size(), 3u);
  for (const auto& s : r.samples)
    EXPECT_EQ(s.status, SampleResult::Status::kCancelled);
  EXPECT_EQ(server.stats().prepare_failures, 1u);
}

}  // namespace
}  // namespace unigen
