// Tests for the count-safe CNF simplification pipeline: per-pass unit
// tests, the projected-count invariance property on randomized formulas
// (the contract every counter/sampler run now depends on), model
// reconstruction, and byte-identity of end-to-end counts/samples between
// the simplify-on and simplify-off paths.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "cnf/cnf.hpp"
#include "core/unigen.hpp"
#include "counting/approxmc.hpp"
#include "counting/exact_counter.hpp"
#include "helpers.hpp"
#include "service/sampler_pool.hpp"
#include "simplify/simplify.hpp"

namespace unigen {
namespace {

bool has_unit(const Cnf& cnf, Lit l) {
  for (const auto& c : cnf.clauses())
    if (c.size() == 1 && c[0] == l) return true;
  return false;
}

TEST(Simplify, UnitPropagationKeepsUnitsAndShrinksClauses) {
  // (a) ∧ (¬a ∨ b) ∧ (¬b ∨ c ∨ d): propagation fixes a and b; the last
  // clause loses ¬b.  The fixed variables stay pinned by re-emitted units,
  // so the model set over all variables is unchanged.
  Cnf cnf(4);
  cnf.add_unit(Lit(0, false));
  cnf.add_binary(Lit(0, true), Lit(1, false));
  cnf.add_ternary(Lit(1, true), Lit(2, false), Lit(3, false));
  Simplifier simp(cnf);
  EXPECT_EQ(simp.stats().units_fixed, 2u);
  EXPECT_TRUE(has_unit(simp.result(), Lit(0, false)));
  EXPECT_TRUE(has_unit(simp.result(), Lit(1, false)));
  EXPECT_EQ(test::brute_force_count(simp.result()),
            test::brute_force_count(cnf));
}

TEST(Simplify, TautologyAndDuplicateRemoval) {
  Cnf cnf(3);
  cnf.add_ternary(Lit(0, false), Lit(1, false), Lit(0, true));  // tautology
  cnf.add_clause({Lit(1, false), Lit(1, false), Lit(2, false)});
  Simplifier simp(cnf);
  EXPECT_EQ(simp.stats().tautologies_removed, 1u);
  ASSERT_EQ(simp.result().num_clauses(), 1u);
  EXPECT_EQ(simp.result().clauses()[0].size(), 2u);  // duplicate b dropped
  EXPECT_EQ(test::brute_force_count(simp.result()),
            test::brute_force_count(cnf));
}

TEST(Simplify, SubsumptionRemovesSupersets) {
  Cnf cnf(3);
  cnf.add_binary(Lit(0, false), Lit(1, false));
  cnf.add_ternary(Lit(0, false), Lit(1, false), Lit(2, false));  // subsumed
  Simplifier simp(cnf);
  EXPECT_EQ(simp.stats().subsumed_clauses, 1u);
  EXPECT_EQ(simp.result().num_clauses(), 1u);
}

TEST(Simplify, SelfSubsumingResolutionStrengthens) {
  // (a ∨ b) strengthens (¬a ∨ b ∨ c) to (b ∨ c), which then subsumes
  // nothing else; model set is preserved.
  Cnf cnf(3);
  cnf.set_sampling_set({0, 1, 2});  // freeze everything: no BVE/pure
  cnf.add_binary(Lit(0, false), Lit(1, false));
  cnf.add_ternary(Lit(0, true), Lit(1, false), Lit(2, false));
  Simplifier simp(cnf);
  EXPECT_GE(simp.stats().strengthened_literals, 1u);
  EXPECT_EQ(test::brute_force_count(simp.result()),
            test::brute_force_count(cnf));
}

TEST(Simplify, PureLiteralRestrictedToNonSamplingVars) {
  // b occurs only positively in both formulas; it may be pinned only when
  // it is outside S (pinning an S variable would delete projections).
  Cnf outside(2);
  outside.set_sampling_set({0});
  outside.add_binary(Lit(0, false), Lit(1, false));
  Simplifier simp_outside(outside);
  EXPECT_EQ(simp_outside.stats().pure_literals_fixed, 1u);
  EXPECT_TRUE(has_unit(simp_outside.result(), Lit(1, false)));

  Cnf inside(2);
  inside.set_sampling_set({0, 1});
  inside.add_binary(Lit(0, false), Lit(1, false));
  Simplifier simp_inside(inside);
  EXPECT_EQ(simp_inside.stats().pure_literals_fixed, 0u);
  EXPECT_EQ(test::brute_force_count(simp_inside.result()), 3u);
}

TEST(Simplify, BveEliminatesDefinedAuxAndReconstructs) {
  // y ↔ (x0 ∧ x1) with S = {x0, x1}: all resolvents of y's three clauses
  // are tautological, so BVE deletes the definition outright.  Models of
  // the simplified formula leave y unconstrained; extend_model must
  // restore the unique y = x0 ∧ x1.
  Cnf cnf(3);
  cnf.set_sampling_set({0, 1});
  const Lit x0(0, false), x1(1, false), y(2, false);
  cnf.add_binary(~y, x0);
  cnf.add_binary(~y, x1);
  cnf.add_ternary(y, ~x0, ~x1);
  Simplifier simp(cnf);
  EXPECT_EQ(simp.stats().eliminated_vars, 1u);
  EXPECT_TRUE(simp.needs_extension());
  EXPECT_EQ(simp.result().num_clauses(), 0u);
  for (int bits = 0; bits < 8; ++bits) {
    Model m(3);
    for (Var v = 0; v < 3; ++v)
      m[static_cast<std::size_t>(v)] =
          ((bits >> v) & 1) ? lbool::True : lbool::False;
    simp.extend_model(m);
    EXPECT_TRUE(cnf.satisfied_by(m)) << "bits=" << bits;
    // x0/x1 untouched, y forced to x0 ∧ x1.
    EXPECT_EQ(m[2], to_lbool(((bits & 1) != 0) && ((bits & 2) != 0)));
  }
}

TEST(Simplify, XorVariablesAreFrozen) {
  // v2 is outside S and occurs only positively in the OR-clauses, but it
  // is constrained by an XOR: neither pure-literal pinning nor BVE may
  // touch it.
  Cnf cnf(3);
  cnf.set_sampling_set({0});
  cnf.add_binary(Lit(0, false), Lit(2, false));
  cnf.add_xor({1, 2}, true);
  Simplifier simp(cnf);
  EXPECT_EQ(simp.stats().pure_literals_fixed, 0u);
  EXPECT_EQ(simp.stats().eliminated_vars, 0u);
  ASSERT_EQ(simp.result().num_xors(), 1u);
  EXPECT_EQ(test::brute_force_count(simp.result()),
            test::brute_force_count(cnf));
}

TEST(Simplify, DetectsUnsat) {
  Cnf cnf(2);
  cnf.add_unit(Lit(0, false));
  cnf.add_binary(Lit(0, true), Lit(1, false));
  cnf.add_unit(Lit(1, true));
  Simplifier simp(cnf);
  EXPECT_TRUE(simp.stats().unsat);
  EXPECT_EQ(test::brute_force_count(simp.result()), 0u);
}

TEST(Simplify, DisabledIsAVerbatimPassThrough) {
  Rng rng(7);
  Cnf cnf = test::random_cnf(8, 20, 3, rng);
  SimplifyOptions opts;
  opts.enabled = false;  // master switch honored even on direct construction
  Simplifier simp(cnf, opts);
  EXPECT_FALSE(simp.stats().ran);
  EXPECT_FALSE(simp.needs_extension());
  EXPECT_EQ(simp.result().clauses(), cnf.clauses());
  EXPECT_EQ(simp.result().num_vars(), cnf.num_vars());
}

TEST(Simplify, EmptySamplingSetCanEliminateEverything) {
  // S = ∅: the projected count is 1 (satisfiable) or 0; BVE may dissolve
  // the whole formula as long as that bit is preserved.
  Cnf cnf(4);
  cnf.set_sampling_set({});
  Rng rng(11);
  for (int round = 0; round < 20; ++round) {
    Cnf f = test::random_cnf(4, 6, 2, rng);
    f.set_sampling_set({});
    Simplifier simp(f);
    const std::uint64_t orig = test::brute_force_count(f) > 0 ? 1 : 0;
    const std::uint64_t simplified =
        test::brute_force_count(simp.result()) > 0 ? 1 : 0;
    EXPECT_EQ(orig, simplified) << "round " << round;
  }
}

// The central property: the projected model count over S is invariant
// under the whole pipeline, on ~100 randomized small CNFs with mixed
// sampling-set sizes (including S = full support and S = ∅), and every
// model of the simplified formula extends to a model of the original with
// identical values on all surviving variables.
TEST(Simplify, ProjectedCountInvarianceProperty) {
  Rng rng(20140603);
  int bve_fired = 0;
  for (int round = 0; round < 100; ++round) {
    const Var n = 4 + static_cast<Var>(rng.below(6));  // 4..9 variables
    const std::size_t c = 3 + rng.below(3 * static_cast<std::uint64_t>(n));
    const std::size_t k = 2 + rng.below(2);
    Cnf cnf = test::random_cnf(n, c, k, rng);

    // Sampling set: rotate through ∅, full support, and a random subset.
    std::vector<Var> s;
    if (round % 5 == 1) {
      for (Var v = 0; v < n; ++v) s.push_back(v);  // S = full support
    } else if (round % 5 != 0) {                   // round % 5 == 0: S = ∅
      for (Var v = 0; v < n; ++v)
        if (rng.flip()) s.push_back(v);
    }
    cnf.set_sampling_set(s);

    Simplifier simp(cnf);
    bve_fired += simp.stats().eliminated_vars > 0 ? 1 : 0;
    EXPECT_EQ(test::brute_force_projected_count(cnf, s),
              test::brute_force_projected_count(simp.result(), s))
        << "round " << round << " |S|=" << s.size();

    // Reconstruction: every model of the simplified formula, extended,
    // satisfies the original and keeps all surviving variables' values.
    for (Model m : test::brute_force_models(simp.result())) {
      const Model before = m;
      simp.extend_model(m);
      EXPECT_TRUE(cnf.satisfied_by(m)) << "round " << round;
      for (Var v = 0; v < n; ++v) {
        const auto sv = static_cast<std::size_t>(v);
        if (m[sv] != before[sv]) {
          // Only BVE-eliminated (hence non-S) variables may be rewritten.
          EXPECT_TRUE(std::find(s.begin(), s.end(), v) == s.end());
        }
      }
    }
  }
  // The property must actually exercise elimination, not vacuously pass.
  EXPECT_GT(bve_fired, 10);
}

// ExactCounter over the sampling set: with S = the full support the
// pipeline is restricted to model-set-preserving passes, so the exact
// total count is byte-identical pre- and post-simplification.
TEST(Simplify, ExactCounterIdenticalWhenSamplingSetIsFullSupport) {
  Rng rng(20140604);
  for (int round = 0; round < 25; ++round) {
    const Var n = 6 + static_cast<Var>(rng.below(5));
    Cnf cnf = test::random_cnf(n, 2 * static_cast<std::size_t>(n), 3, rng);
    std::vector<Var> s(static_cast<std::size_t>(n));
    for (Var v = 0; v < n; ++v) s[static_cast<std::size_t>(v)] = v;
    cnf.set_sampling_set(s);
    Simplifier simp(cnf);
    ExactCounter counter;
    const auto orig = counter.count(cnf);
    const auto post = counter.count(simp.result());
    ASSERT_TRUE(orig.has_value());
    ASSERT_TRUE(post.has_value());
    EXPECT_EQ(*orig, *post) << "round " << round;
  }
}

/// A hashed-mode fixture with a genuine independent support: inputs
/// x0..x6 under one clause (112 projections > hiThresh(ε=6) = 89), plus
/// Tseitin-defined auxiliaries y0 = x0∧x1, y1 = y0∨x3, y2 = x4∧x5 that BVE
/// can dissolve.  S = {x0..x6} is an independent support: the auxiliaries
/// are functions of the inputs, so |R_F| = 112 as well.
Cnf independent_support_formula() {
  Cnf cnf(10);
  cnf.add_ternary(Lit(0, false), Lit(1, false), Lit(2, false));
  const auto define_and = [&cnf](Var g, Lit a, Lit b) {
    cnf.add_binary(Lit(g, true), a);
    cnf.add_binary(Lit(g, true), b);
    cnf.add_ternary(Lit(g, false), ~a, ~b);
  };
  const auto define_or = [&cnf](Var g, Lit a, Lit b) {
    cnf.add_binary(Lit(g, false), ~a);
    cnf.add_binary(Lit(g, false), ~b);
    cnf.add_ternary(Lit(g, true), a, b);
  };
  define_and(7, Lit(0, false), Lit(1, false));
  define_or(8, Lit(7, false), Lit(3, false));
  define_and(9, Lit(4, false), Lit(5, false));
  cnf.set_sampling_set({0, 1, 2, 3, 4, 5, 6});
  return cnf;
}

TEST(Simplify, ApproxMcExactCountsByteIdenticalOnVsOff) {
  const Cnf cnf = independent_support_formula();
  ApproxMcOptions on;
  on.epsilon = 0.4;  // pivot = 122 > 112: the unhashed path counts exactly
  ApproxMcOptions off = on;
  off.simplify.enabled = false;
  Rng rng_on(99), rng_off(99);
  const ApproxMcResult a = approx_count(cnf, on, rng_on);
  const ApproxMcResult b = approx_count(cnf, off, rng_off);
  ASSERT_TRUE(a.valid && a.exact);
  ASSERT_TRUE(b.valid && b.exact);
  EXPECT_EQ(a.cell_count, 112u);
  EXPECT_EQ(a.cell_count, b.cell_count);
  EXPECT_EQ(a.hash_count, b.hash_count);
  EXPECT_GT(a.simplify.eliminated_vars, 0u);
  EXPECT_FALSE(b.simplify.ran);
}

TEST(Simplify, UniGenSamplesByteIdenticalOnVsOff) {
  // Fixed seed, hashed mode, S an independent support: the on- and
  // off-path RNG trajectories coincide (all probe counts are count-safe
  // invariants) and each S-projection has a unique extension, so the
  // sample streams must be byte-identical.
  const Cnf cnf = independent_support_formula();
  UniGenOptions on;
  UniGenOptions off;
  off.simplify.enabled = false;
  Rng rng_on(20140605), rng_off(20140605);
  UniGen sampler_on(cnf, on, rng_on);
  UniGen sampler_off(cnf, off, rng_off);
  ASSERT_TRUE(sampler_on.prepare());
  ASSERT_TRUE(sampler_off.prepare());
  ASSERT_FALSE(sampler_on.stats().trivial);
  ASSERT_GT(sampler_on.stats().simplify.eliminated_vars, 0u);

  for (int i = 0; i < 40; ++i) {
    const SampleResult a = sampler_on.sample();
    const SampleResult b = sampler_off.sample();
    ASSERT_EQ(a.status, b.status) << "sample " << i;
    EXPECT_EQ(a.witness, b.witness) << "sample " << i;
    if (a.ok()) EXPECT_TRUE(cnf.satisfied_by(a.witness));
  }
  EXPECT_EQ(sampler_on.stats().samples_ok, sampler_off.stats().samples_ok);
}

TEST(Simplify, SamplerPoolByteIdenticalOnVsOff) {
  const Cnf cnf = independent_support_formula();
  SamplerPoolOptions on;
  on.num_threads = 3;
  on.seed = 20140606;
  SamplerPoolOptions off = on;
  off.unigen.simplify.enabled = false;
  SamplerPool pool_on(cnf, on);
  SamplerPool pool_off(cnf, off);
  ASSERT_TRUE(pool_on.prepare());
  ASSERT_TRUE(pool_off.prepare());
  const auto a = pool_on.sample_many(60);
  const auto b = pool_off.sample_many(60);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].status, b[i].status) << i;
    EXPECT_EQ(a[i].witness, b[i].witness) << i;
  }
}

// Seed-fixed uniformity regression with simplification on: the witness
// histogram over the original formula's model space must stay flat when
// the solver only ever sees the shrunk formula.
TEST(Simplify, UniformityRegressionWithSimplificationOn) {
  const Cnf cnf = independent_support_formula();
  const auto truth = test::brute_force_models(cnf);
  ASSERT_EQ(truth.size(), 112u);
  Rng rng(20140607);
  UniGenOptions opts;  // simplification on by default
  UniGen sampler(cnf, opts, rng);
  ASSERT_TRUE(sampler.prepare());
  ASSERT_FALSE(sampler.stats().trivial) << "fixture must stay hashed";

  std::map<Model, int> histogram;
  int ok = 0;
  constexpr int kRequests = 4000;
  for (int i = 0; i < kRequests; ++i) {
    const auto r = sampler.sample();
    if (!r.ok()) continue;
    ++ok;
    ASSERT_TRUE(cnf.satisfied_by(r.witness));
    ++histogram[r.witness];
  }
  ASSERT_GT(ok, kRequests / 2);
  // Chi-square per degree of freedom concentrates around 1 under perfect
  // uniformity (same criterion as tests/test_uniformity.cpp); a
  // reconstruction or count-safety bug skews the histogram hard.
  const double expected =
      static_cast<double>(ok) / static_cast<double>(truth.size());
  double chi2 = 0.0;
  for (const Model& m : truth) {
    const auto it = histogram.find(m);
    const double observed =
        it == histogram.end() ? 0.0 : static_cast<double>(it->second);
    chi2 += (observed - expected) * (observed - expected) / expected;
  }
  EXPECT_LT(chi2 / static_cast<double>(truth.size() - 1), 1.5);
  EXPECT_EQ(histogram.size(), truth.size());
}

}  // namespace
}  // namespace unigen
