// Unit and property tests for the CDCL core: correctness against
// brute-force semantics, incremental use, assumptions, and budgets.

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "sat/solver.hpp"

namespace unigen {
namespace {

using test::brute_force_count;
using test::random_cnf;

Lit pos(Var v) { return Lit(v, false); }
Lit neg(Var v) { return Lit(v, true); }

TEST(Solver, EmptyFormulaIsSat) {
  Solver s;
  EXPECT_EQ(s.solve(), lbool::True);
}

TEST(Solver, SingleUnit) {
  Solver s;
  const Var v = s.new_var();
  ASSERT_TRUE(s.add_clause({pos(v)}));
  ASSERT_EQ(s.solve(), lbool::True);
  EXPECT_EQ(s.model()[0], lbool::True);
}

TEST(Solver, ContradictoryUnitsAreUnsat) {
  Solver s;
  const Var v = s.new_var();
  ASSERT_TRUE(s.add_clause({pos(v)}));
  EXPECT_FALSE(s.add_clause({neg(v)}));
  EXPECT_FALSE(s.okay());
  EXPECT_EQ(s.solve(), lbool::False);
}

TEST(Solver, EmptyClauseIsUnsat) {
  Solver s;
  s.new_var();
  EXPECT_FALSE(s.add_clause({}));
  EXPECT_EQ(s.solve(), lbool::False);
}

TEST(Solver, TautologicalClauseIsDropped) {
  Solver s;
  const Var v = s.new_var();
  ASSERT_TRUE(s.add_clause({pos(v), neg(v)}));
  EXPECT_EQ(s.solve(), lbool::True);
}

TEST(Solver, DuplicateLiteralsAreMerged) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  ASSERT_TRUE(s.add_clause({pos(a), pos(a), pos(b), pos(b)}));
  ASSERT_TRUE(s.add_clause({neg(a)}));
  ASSERT_EQ(s.solve(), lbool::True);
  EXPECT_EQ(s.model()[1], lbool::True);
}

TEST(Solver, SimpleUnsatCore2Vars) {
  // (a|b)(a|~b)(~a|b)(~a|~b) is UNSAT.
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_clause({pos(a), pos(b)});
  s.add_clause({pos(a), neg(b)});
  s.add_clause({neg(a), pos(b)});
  s.add_clause({neg(a), neg(b)});
  EXPECT_EQ(s.solve(), lbool::False);
  EXPECT_FALSE(s.okay());
}

TEST(Solver, PigeonHole3Into2IsUnsat) {
  // p_{i,j}: pigeon i in hole j; 3 pigeons, 2 holes.
  Solver s;
  Var p[3][2];
  for (auto& row : p)
    for (auto& x : row) x = s.new_var();
  for (int i = 0; i < 3; ++i) s.add_clause({pos(p[i][0]), pos(p[i][1])});
  for (int j = 0; j < 2; ++j)
    for (int i1 = 0; i1 < 3; ++i1)
      for (int i2 = i1 + 1; i2 < 3; ++i2)
        s.add_clause({neg(p[i1][j]), neg(p[i2][j])});
  EXPECT_EQ(s.solve(), lbool::False);
}

TEST(Solver, PigeonHole5Into4IsUnsat) {
  Solver s;
  constexpr int kPigeons = 5, kHoles = 4;
  Var p[kPigeons][kHoles];
  for (auto& row : p)
    for (auto& x : row) x = s.new_var();
  for (int i = 0; i < kPigeons; ++i) {
    std::vector<Lit> c;
    for (int j = 0; j < kHoles; ++j) c.push_back(pos(p[i][j]));
    s.add_clause(c);
  }
  for (int j = 0; j < kHoles; ++j)
    for (int i1 = 0; i1 < kPigeons; ++i1)
      for (int i2 = i1 + 1; i2 < kPigeons; ++i2)
        s.add_clause({neg(p[i1][j]), neg(p[i2][j])});
  EXPECT_EQ(s.solve(), lbool::False);
  EXPECT_GT(s.stats().conflicts, 0u);
}

TEST(Solver, ChainPropagation) {
  // x0 -> x1 -> ... -> x49, assert x0: all true by unit propagation.
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < 50; ++i) v.push_back(s.new_var());
  for (int i = 0; i + 1 < 50; ++i) s.add_clause({neg(v[i]), pos(v[i + 1])});
  s.add_clause({pos(v[0])});
  ASSERT_EQ(s.solve(), lbool::True);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(s.model()[v[i]], lbool::True);
}

TEST(Solver, ModelSatisfiesFormula) {
  Rng rng(7);
  for (int round = 0; round < 30; ++round) {
    const Cnf cnf = random_cnf(12, 40, 3, rng);
    Solver s;
    s.load(cnf);
    if (s.solve() == lbool::True) {
      EXPECT_TRUE(cnf.satisfied_by(s.model())) << "round " << round;
    }
  }
}

TEST(Solver, AssumptionsBasics) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_clause({neg(a), pos(b)});
  ASSERT_EQ(s.solve({pos(a)}), lbool::True);
  EXPECT_EQ(s.model()[b], lbool::True);
  ASSERT_EQ(s.solve({pos(a), neg(b)}), lbool::False);
  // Solver state must be reusable after an assumption failure.
  ASSERT_EQ(s.solve({neg(a)}), lbool::True);
  EXPECT_TRUE(s.okay());
}

TEST(Solver, AssumptionContradictingUnit) {
  Solver s;
  const Var a = s.new_var();
  s.add_clause({pos(a)});
  EXPECT_EQ(s.solve({neg(a)}), lbool::False);
  EXPECT_TRUE(s.okay());  // only UNSAT under assumptions
  EXPECT_EQ(s.solve(), lbool::True);
}

TEST(Solver, IncrementalClauseAddition) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_clause({pos(a), pos(b)});
  ASSERT_EQ(s.solve(), lbool::True);
  ASSERT_TRUE(s.add_clause({neg(a)}));
  ASSERT_EQ(s.solve(), lbool::True);
  EXPECT_EQ(s.model()[b], lbool::True);
  ASSERT_TRUE(s.add_clause({neg(b)}) || !s.okay());
  EXPECT_EQ(s.solve(), lbool::False);
}

TEST(Solver, ConflictBudgetReturnsUndef) {
  // A hard instance (PHP 8/7) with a 1-conflict budget cannot finish.
  Solver s;
  constexpr int kPigeons = 8, kHoles = 7;
  std::vector<std::vector<Var>> p(kPigeons, std::vector<Var>(kHoles));
  for (auto& row : p)
    for (auto& x : row) x = s.new_var();
  for (int i = 0; i < kPigeons; ++i) {
    std::vector<Lit> c;
    for (int j = 0; j < kHoles; ++j) c.push_back(pos(p[i][j]));
    s.add_clause(c);
  }
  for (int j = 0; j < kHoles; ++j)
    for (int i1 = 0; i1 < kPigeons; ++i1)
      for (int i2 = i1 + 1; i2 < kPigeons; ++i2)
        s.add_clause({neg(p[i1][j]), neg(p[i2][j])});
  EXPECT_EQ(s.solve_limited({}, Deadline::never(), 1), lbool::Undef);
  // And with no budget it completes.
  EXPECT_EQ(s.solve(), lbool::False);
}

TEST(Solver, ExpiredDeadlineReturnsUndef) {
  Solver s;
  constexpr int kPigeons = 9, kHoles = 8;
  std::vector<std::vector<Var>> p(kPigeons, std::vector<Var>(kHoles));
  for (auto& row : p)
    for (auto& x : row) x = s.new_var();
  for (int i = 0; i < kPigeons; ++i) {
    std::vector<Lit> c;
    for (int j = 0; j < kHoles; ++j) c.push_back(pos(p[i][j]));
    s.add_clause(c);
  }
  for (int j = 0; j < kHoles; ++j)
    for (int i1 = 0; i1 < kPigeons; ++i1)
      for (int i2 = i1 + 1; i2 < kPigeons; ++i2)
        s.add_clause({neg(p[i1][j]), neg(p[i2][j])});
  EXPECT_EQ(s.solve_limited({}, Deadline::in_seconds(0.0), 0), lbool::Undef);
}

TEST(Solver, GaussRunsOnXorsAddedAfterSolve) {
  // Regression: a solver that already ran solve() (gauss_done_ set) must
  // re-run Gaussian elimination over XOR rows added afterwards.
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  const Var c = s.new_var();
  s.add_clause({pos(a), pos(b), pos(c)});
  ASSERT_EQ(s.solve(), lbool::True);
  EXPECT_EQ(s.stats().gauss_rows, 0u);
  // x0^x1 = 1 and x0^x1^x2 = 1 imply x2 = 0 — but only elimination sees it
  // eagerly; the watch scheme alone would discover it during search.
  ASSERT_TRUE(s.add_xor({a, b}, true));
  ASSERT_TRUE(s.add_xor({a, b, c}, true));
  ASSERT_EQ(s.solve(), lbool::True);
  EXPECT_GT(s.stats().gauss_rows, 0u);
  EXPECT_GT(s.stats().gauss_units, 0u);
  EXPECT_EQ(s.fixed_value(c), lbool::False);
}

TEST(Solver, AddClauseFromMatchesAddClause) {
  Rng rng(29);
  for (int round = 0; round < 20; ++round) {
    const Cnf cnf = random_cnf(9, 30, 3, rng);
    Solver via_vector;
    via_vector.load(cnf);
    Solver via_buffer;
    while (via_buffer.num_vars() < cnf.num_vars()) via_buffer.new_var();
    bool ok = true;
    for (const auto& clause : cnf.clauses())
      ok = via_buffer.add_clause_from(clause.data(), clause.size()) && ok;
    EXPECT_EQ(via_vector.solve(), via_buffer.solve()) << "round " << round;
  }
}

TEST(Solver, AbsorberActivatedXorToggles) {
  // XOR(a, b, absorber) = 1: inert while the absorber is free, equivalent
  // to a^b=1 under the assumption ¬absorber.
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  const Var z = s.new_var();
  s.mark_absorber(z);
  ASSERT_TRUE(s.add_xor({a, b, z}, true));
  // Inert: both equal-value assignments of (a, b) remain possible.
  ASSERT_EQ(s.solve({pos(a), pos(b)}), lbool::True);
  ASSERT_EQ(s.solve({neg(a), neg(b)}), lbool::True);
  // Active: a^b = 1 forbids equal values.
  ASSERT_EQ(s.solve({neg(z), pos(a), pos(b)}), lbool::False);
  ASSERT_EQ(s.solve({neg(z), pos(a), neg(b)}), lbool::True);
  EXPECT_TRUE(s.okay());
}

TEST(Solver, RetireRowsRemovesConstraintAndFreezesAbsorber) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  const Var z = s.new_var();
  s.mark_absorber(z);
  ASSERT_TRUE(s.add_xor({a, b, z}, true));
  ASSERT_EQ(s.solve({neg(z), pos(a), pos(b)}), lbool::False);
  s.retire_rows({z});
  // The row is gone: (a, b) unconstrained again, absorber fixed at root.
  ASSERT_EQ(s.solve({pos(a), pos(b)}), lbool::True);
  EXPECT_NE(s.fixed_value(z), lbool::Undef);
}

TEST(Solver, StatsAreTracked) {
  Rng rng(11);
  const Cnf cnf = random_cnf(30, 126, 3, rng);
  Solver s;
  s.load(cnf);
  s.solve();
  EXPECT_GT(s.stats().propagations, 0u);
  EXPECT_GT(s.stats().decisions, 0u);
}

// --- property test: solver verdict matches brute force on random 3-CNF ---

class SolverFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SolverFuzz, MatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  // Sweep clause density through the SAT/UNSAT transition.
  for (std::size_t clauses : {20u, 35u, 45u, 55u, 70u}) {
    const Cnf cnf = random_cnf(10, clauses, 3, rng);
    const bool expect_sat = brute_force_count(cnf) > 0;
    Solver s;
    s.load(cnf);
    const lbool got = s.solve();
    ASSERT_NE(got, lbool::Undef);
    EXPECT_EQ(got == lbool::True, expect_sat)
        << "seed=" << GetParam() << " clauses=" << clauses;
    if (got == lbool::True) {
      EXPECT_TRUE(cnf.satisfied_by(s.model()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, SolverFuzz, ::testing::Range(0, 25));

// --- property test: repeated incremental solving with blocking clauses ---

class SolverIncrementalFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SolverIncrementalFuzz, BlockingEnumerationTerminates) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 1);
  const Cnf cnf = random_cnf(9, 25, 3, rng);
  const std::uint64_t expected = brute_force_count(cnf);
  Solver s;
  s.load(cnf);
  std::uint64_t found = 0;
  while (s.solve() == lbool::True) {
    const Model& m = s.model();
    EXPECT_TRUE(cnf.satisfied_by(m));
    ++found;
    std::vector<Lit> block;
    for (Var v = 0; v < cnf.num_vars(); ++v)
      block.emplace_back(v, m[static_cast<std::size_t>(v)] == lbool::True);
    if (!s.add_clause(std::move(block))) break;
    ASSERT_LE(found, expected);
  }
  EXPECT_EQ(found, expected);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, SolverIncrementalFuzz,
                         ::testing::Range(0, 15));

}  // namespace
}  // namespace unigen
