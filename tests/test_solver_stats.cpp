// SolverStats::merge coverage: the pooled services (SamplerPool, parallel
// ApproxMC) aggregate per-worker engine counters exclusively through
// merge(), so a counter added to SolverStats but forgotten in merge()
// silently drops out of every service-level report.  This suite makes that
// omission a test failure instead: the struct is all uint64_t counters, so
// merging distinct-valued words twice into a zero struct must double every
// word — including any field added after this test was written.

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <type_traits>

#include "sat/solver.hpp"

namespace unigen {
namespace {

constexpr std::size_t kWords = sizeof(SolverStats) / sizeof(std::uint64_t);
static_assert(sizeof(SolverStats) == kWords * sizeof(std::uint64_t),
              "SolverStats must stay a plain array of uint64_t counters for "
              "the coverage round-trip below; adapt this test if a field of "
              "a different width is added");
static_assert(std::is_trivially_copyable_v<SolverStats>);

std::array<std::uint64_t, kWords> words_of(const SolverStats& s) {
  std::array<std::uint64_t, kWords> w;
  std::memcpy(w.data(), &s, sizeof(SolverStats));
  return w;
}

SolverStats stats_of(const std::array<std::uint64_t, kWords>& w) {
  SolverStats s;
  std::memcpy(&s, w.data(), sizeof(SolverStats));
  return s;
}

TEST(SolverStats, MergeCoversEveryField) {
  // Distinct unit values per word, so a dropped field is distinguishable
  // from a swapped pair.
  std::array<std::uint64_t, kWords> unit_words;
  for (std::size_t i = 0; i < kWords; ++i) unit_words[i] = i + 1;
  const SolverStats unit = stats_of(unit_words);

  SolverStats accum;  // zero-initialized counters
  accum.merge(unit);
  accum.merge(unit);

  const auto merged = words_of(accum);
  for (std::size_t i = 0; i < kWords; ++i)
    EXPECT_EQ(merged[i], 2 * (i + 1))
        << "SolverStats word " << i
        << " not accumulated by merge(): a counter was added to the struct "
           "but not to SolverStats::merge()";
}

TEST(SolverStats, MergeIntoNonZeroAccumulates) {
  std::array<std::uint64_t, kWords> a_words, b_words;
  for (std::size_t i = 0; i < kWords; ++i) {
    a_words[i] = 100 + i;
    b_words[i] = 1000 * (i + 1);
  }
  SolverStats a = stats_of(a_words);
  a.merge(stats_of(b_words));
  const auto merged = words_of(a);
  for (std::size_t i = 0; i < kWords; ++i)
    EXPECT_EQ(merged[i], 100 + i + 1000 * (i + 1)) << "word " << i;
}

TEST(SolverStats, EngineCountersSurvivePooledAggregation) {
  // The named counters the services report on, spot-checked through the
  // same merge() the pools use.
  SolverStats worker;
  worker.solver_rebuilds = 1;
  worker.reused_solves = 7;
  worker.retracted_blocks = 3;
  worker.propagations = 11;
  worker.xor_propagations = 5;
  SolverStats total;
  total.merge(worker);
  total.merge(worker);
  EXPECT_EQ(total.solver_rebuilds, 2u);
  EXPECT_EQ(total.reused_solves, 14u);
  EXPECT_EQ(total.retracted_blocks, 6u);
  EXPECT_EQ(total.propagations, 22u);
  EXPECT_EQ(total.xor_propagations, 10u);
}

}  // namespace
}  // namespace unigen
