// Stress and lifecycle tests for the CDCL core: clause-database reduction,
// restarts, long XOR chains, repeated incremental use.

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "sat/enumerator.hpp"
#include "sat/solver.hpp"

namespace unigen {
namespace {

using test::brute_force_count;
using test::random_cnf;

TEST(SolverStress, ClauseDatabaseReductionTriggers) {
  // A hard near-threshold instance with a tiny reduce-db budget must
  // exercise reduction without losing correctness.
  Rng rng(3);
  const Cnf cnf = random_cnf(60, 252, 3, rng);  // ratio 4.2
  Solver s;
  s.options().reduce_db_first = 64;
  s.load(cnf);
  const lbool got = s.solve();
  ASSERT_NE(got, lbool::Undef);
  Solver reference;
  reference.load(cnf);
  EXPECT_EQ(got, reference.solve());
  if (got == lbool::True) EXPECT_TRUE(cnf.satisfied_by(s.model()));
  EXPECT_GT(s.stats().removed_clauses + (s.stats().conflicts < 64 ? 1 : 0),
            0u);
}

TEST(SolverStress, RestartsHappenOnHardInstances) {
  Rng rng(5);
  const Cnf cnf = random_cnf(70, 294, 3, rng);
  Solver s;
  s.options().restart_base = 16;
  s.load(cnf);
  ASSERT_NE(s.solve(), lbool::Undef);
  EXPECT_GT(s.stats().restarts, 1u);
}

TEST(SolverStress, VeryLongXorChain) {
  // x0 ^ x1 = 1, x1 ^ x2 = 1, ..., forces alternation over 300 vars.
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < 300; ++i) v.push_back(s.new_var());
  for (int i = 0; i + 1 < 300; ++i) ASSERT_TRUE(s.add_xor({v[i], v[i + 1]}, true));
  ASSERT_TRUE(s.add_clause({Lit(v[0], false)}));  // x0 = 1
  ASSERT_EQ(s.solve(), lbool::True);
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(s.model()[v[i]] == lbool::True, i % 2 == 0) << "i=" << i;
  }
}

TEST(SolverStress, WideXorWithForcedTail) {
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < 200; ++i) v.push_back(s.new_var());
  ASSERT_TRUE(s.add_xor(v, true));
  for (int i = 0; i < 199; ++i) ASSERT_TRUE(s.add_clause({Lit(v[i], true)}));
  ASSERT_EQ(s.solve(), lbool::True);
  EXPECT_EQ(s.model()[v[199]], lbool::True);
}

TEST(SolverStress, ManyReSolvesWithAssumptions) {
  Rng rng(7);
  const Cnf cnf = random_cnf(20, 60, 3, rng);
  Solver s;
  s.load(cnf);
  const lbool base = s.solve();
  ASSERT_EQ(base, lbool::True);
  for (int round = 0; round < 50; ++round) {
    const Var a = static_cast<Var>(rng.below(20));
    const Var b = static_cast<Var>(rng.below(20));
    const std::vector<Lit> assumptions{Lit(a, rng.flip()), Lit(b, rng.flip())};
    const lbool got = s.solve(assumptions);
    ASSERT_NE(got, lbool::Undef);
    if (got == lbool::True) {
      EXPECT_TRUE(cnf.satisfied_by(s.model()));
      for (const Lit l : assumptions) {
        EXPECT_EQ(eval(s.model(), l), lbool::True);
      }
    }
  }
  // Solver still consistent with an unconstrained solve.
  EXPECT_EQ(s.solve(), lbool::True);
}

TEST(SolverStress, EnumerationAfterBudgetedUndef) {
  // A solve interrupted by a conflict budget must not corrupt later
  // complete enumeration.
  Rng rng(11);
  const Cnf cnf = random_cnf(12, 30, 3, rng);
  Solver s;
  s.load(cnf);
  (void)s.solve_limited({}, Deadline::never(), 1);  // likely Undef
  EnumerateOptions opts;
  opts.store_models = false;
  const auto result = enumerate_models(s, opts);
  ASSERT_TRUE(result.exhausted);
  EXPECT_EQ(result.count, brute_force_count(cnf));
}

TEST(SolverStress, RandomPolarityStillCorrect) {
  Rng rng(13);
  Rng solver_rng(17);
  for (int round = 0; round < 10; ++round) {
    const Cnf cnf = random_cnf(10, 44, 3, rng);
    Solver s;
    s.set_rng(&solver_rng);
    s.options().random_initial_phase = true;
    s.load(cnf);
    const lbool got = s.solve();
    ASSERT_NE(got, lbool::Undef);
    EXPECT_EQ(got == lbool::True, brute_force_count(cnf) > 0);
  }
}

TEST(SolverStress, MixedCnfXorEnumerationLargeish) {
  // 2^12 solution space cut by xors; exhaustive enumeration stays exact.
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < 14; ++i) v.push_back(s.new_var());
  ASSERT_TRUE(s.add_xor({v[0], v[3], v[7], v[11]}, true));
  ASSERT_TRUE(s.add_xor({v[1], v[5], v[9]}, false));
  ASSERT_TRUE(s.add_clause({Lit(v[2], false), Lit(v[6], false)}));
  EnumerateOptions opts;
  opts.store_models = false;
  const auto result = enumerate_models(s, opts);
  ASSERT_TRUE(result.exhausted);
  // 2^14 * 1/2 * 1/2 * 3/4 = 3072.
  EXPECT_EQ(result.count, 3072u);
}

TEST(SolverStress, GaussStatsPopulated) {
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < 8; ++i) v.push_back(s.new_var());
  s.add_xor({v[0], v[1]}, true);
  s.add_xor({v[1], v[2]}, true);
  s.add_xor({v[0], v[2], v[3]}, true);  // implies v3 = 1
  ASSERT_EQ(s.solve(), lbool::True);
  EXPECT_GT(s.stats().gauss_rows, 0u);
  EXPECT_EQ(s.model()[v[3]], lbool::True);
}

}  // namespace
}  // namespace unigen
