// Round-trip coverage of the canonical stats-struct JSON layer
// (src/obs/stats_json.*): every struct serializes, parses back, and
// re-serializes to the identical document; exact integers and %.17g
// doubles survive; enum names invert through *_from_string.  The writer
// and reader are driven by one visit_fields list per struct, so these
// tests are what catches a field added to one side only.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

#include "obs/stats_json.hpp"

namespace unigen {
namespace {

using obs::JsonValue;

/// serialize → parse → deserialize → re-serialize must reproduce the
/// exact document.
template <class S>
void expect_round_trip(const S& s) {
  const JsonValue j = obs::to_json(s);
  const std::string text = j.dump();
  const JsonValue parsed = JsonValue::parse(text);
  S recovered;
  ASSERT_TRUE(obs::from_json(parsed, recovered)) << text;
  EXPECT_EQ(obs::to_json(recovered).dump(), text);
}

TEST(JsonValue, ExactIntegersSurviveARoundTrip) {
  const std::uint64_t big = std::numeric_limits<std::uint64_t>::max();
  JsonValue v = JsonValue::object();
  v.set("u", JsonValue::of_uint(big));
  v.set("i", JsonValue::of_int(std::numeric_limits<std::int64_t>::min()));
  const std::string text = v.dump();
  EXPECT_NE(text.find("18446744073709551615"), std::string::npos);
  EXPECT_NE(text.find("-9223372036854775808"), std::string::npos);
  const JsonValue back = JsonValue::parse(text);
  EXPECT_EQ(back.find("u")->as_uint(), big);
  EXPECT_EQ(back.find("i")->as_int(),
            std::numeric_limits<std::int64_t>::min());
}

TEST(JsonValue, DoublesKeepFullPrecision) {
  const double pi = 3.141592653589793;
  JsonValue v = JsonValue::object();
  v.set("d", JsonValue::of_double(pi));
  const JsonValue back = JsonValue::parse(v.dump());
  EXPECT_EQ(back.find("d")->as_double(), pi);
}

TEST(JsonValue, StringEscapesRoundTrip) {
  const std::string nasty = "line\nquote\"back\\slash\ttab";
  JsonValue v = JsonValue::object();
  v.set("s", JsonValue::of_string(nasty));
  const JsonValue back = JsonValue::parse(v.dump());
  EXPECT_EQ(back.find("s")->as_string(), nasty);
}

TEST(JsonValue, StrictParserRejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse("{\"a\":1,}"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("{\"a\":1} x"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("[1, tru]"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("\"open"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse(""), std::runtime_error);
}

TEST(StatsJson, SolverStatsRoundTrips) {
  SolverStats s;
  s.decisions = 11;
  s.propagations = 22;
  s.xor_propagations = 33;
  s.conflicts = 44;
  s.restarts = 5;
  s.learnt_clauses = 66;
  s.removed_clauses = 7;
  s.minimized_literals = 88;
  s.gauss_units = 9;
  s.gauss_rows = 10;
  s.solver_rebuilds = 2;
  s.reused_solves = 123;
  s.retracted_blocks = 4;
  expect_round_trip(s);
}

TEST(StatsJson, SimplifyStatsRoundTrips) {
  SimplifyStats s;
  s.ran = true;
  s.rounds = 3;
  s.original_clauses = 100;
  s.result_clauses = 60;
  s.units_fixed = 5;
  s.eliminated_vars = 7;
  s.seconds = 0.125;
  expect_round_trip(s);
}

TEST(StatsJson, UniGenStatsRoundTripsWithNestedSimplify) {
  UniGenStats s;
  s.kappa = 0.4979;
  s.pivot = 89.0;
  s.q = 7;
  s.samples_requested = 100;
  s.samples_ok = 97;
  s.sample_bsat_calls = 412;
  s.sample_seconds = 1.5;
  s.total_xor_rows = 300;
  s.simplify.ran = true;
  s.simplify.rounds = 2;
  s.simplify.seconds = 0.01;
  expect_round_trip(s);

  // The nested struct really is nested (not flattened).
  const JsonValue j = obs::to_json(s);
  ASSERT_NE(j.find("simplify"), nullptr);
  EXPECT_EQ(j.find("simplify")->find("rounds")->as_int(), 2);
}

TEST(StatsJson, SamplerPoolStatsRoundTripsWithWorkers) {
  SamplerPoolStats s;
  s.requests = 40;
  s.samples_ok = 39;
  s.samples_timed_out = 1;
  s.service_seconds = 2.25;
  s.prepare.q = 5;
  s.prepare.samples_requested = 0;
  SamplerPoolWorkerStats w0;
  w0.requests_served = 20;
  w0.sample_bsat_calls = 77;
  SamplerPoolWorkerStats w1;
  w1.requests_served = 19;
  w1.solver_rebuilds = 1;
  s.workers = {w0, w1};
  expect_round_trip(s);

  const JsonValue j = obs::to_json(s);
  ASSERT_NE(j.find("workers"), nullptr);
  ASSERT_EQ(j.find("workers")->items().size(), 2u);
  EXPECT_EQ(j.find("workers")->items()[0].find("requests_served")->as_uint(),
            20u);
}

TEST(StatsJson, SessionRegistryStatsRoundTrips) {
  SessionRegistryStats s;
  s.requests = 12;
  s.hits = 9;
  s.misses = 3;
  s.evictions = 1;
  s.prepare_failures = 0;
  s.sessions = 2;
  s.resident_bytes = 1 << 20;
  expect_round_trip(s);
}

TEST(StatsJson, FleetStatsRoundTrips) {
  FleetStats s;
  s.spawns = 4;
  s.crashes = 2;
  s.hang_kills = 1;
  s.respawns = 3;
  s.redispatches = 2;
  s.poisoned_tasks = 0;
  s.total_recovery_seconds = 0.05;
  s.max_recovery_seconds = 0.03;
  expect_round_trip(s);
}

TEST(StatsJson, FromJsonRejectsMissingFieldsAndWrongShapes) {
  SolverStats s;
  EXPECT_FALSE(obs::from_json(JsonValue::parse("{}"), s));
  EXPECT_FALSE(obs::from_json(JsonValue::parse("[1,2]"), s));
  EXPECT_FALSE(obs::from_json(JsonValue::parse("{\"decisions\":true}"), s));
  // A UniGenStats document without the nested simplify object fails too.
  UniGenStats u;
  JsonValue flat = obs::to_json(u);
  std::string text = flat.dump();
  const auto pos = text.find(",\"simplify\"");
  ASSERT_NE(pos, std::string::npos);
  text.erase(pos, text.size() - pos - 1);  // drop the trailing object
  UniGenStats u2;
  EXPECT_FALSE(obs::from_json(JsonValue::parse(text), u2));
}

TEST(StatsJson, EnumNamesRoundTrip) {
  for (const RequestStatus s :
       {RequestStatus::kComplete, RequestStatus::kPartial,
        RequestStatus::kFailed, RequestStatus::kTimedOut,
        RequestStatus::kCancelled}) {
    RequestStatus back = RequestStatus::kComplete;
    ASSERT_TRUE(obs::request_status_from_string(to_string(s), back))
        << to_string(s);
    EXPECT_EQ(back, s);
  }
  RequestStatus sink = RequestStatus::kComplete;
  EXPECT_FALSE(obs::request_status_from_string("bogus", sink));

  for (const SampleResult::Status s :
       {SampleResult::Status::kOk, SampleResult::Status::kFail,
        SampleResult::Status::kTimeout, SampleResult::Status::kUnsat,
        SampleResult::Status::kCancelled}) {
    SampleResult::Status back = SampleResult::Status::kOk;
    ASSERT_TRUE(obs::sample_status_from_string(obs::to_string(s), back))
        << obs::to_string(s);
    EXPECT_EQ(back, s);
  }
  SampleResult::Status ssink = SampleResult::Status::kOk;
  EXPECT_FALSE(obs::sample_status_from_string("bogus", ssink));
}

TEST(StatsJson, StatusMappingHelperIsTotal) {
  using S = SampleResult::Status;
  EXPECT_EQ(sample_status_from_request(RequestStatus::kComplete), S::kOk);
  EXPECT_EQ(sample_status_from_request(RequestStatus::kTimedOut),
            S::kTimeout);
  EXPECT_EQ(sample_status_from_request(RequestStatus::kCancelled),
            S::kCancelled);
  EXPECT_EQ(sample_status_from_request(RequestStatus::kFailed), S::kFail);
  EXPECT_EQ(sample_status_from_request(RequestStatus::kPartial), S::kFail);
}

}  // namespace
}  // namespace unigen
