// Tests for the Tseitin encoder: model count equals the number of
// satisfying circuit inputs, inputs form an independent support, and the
// sampling set is wired up.

#include <gtest/gtest.h>

#include <map>

#include "cnf/tseitin.hpp"
#include "helpers.hpp"
#include "util/rng.hpp"

namespace unigen {
namespace {

using Sig = Circuit::Sig;

/// Number of input assignments for which every circuit output is true.
std::uint64_t count_satisfying_inputs(const Circuit& c) {
  std::uint64_t count = 0;
  const std::size_t n = c.num_inputs();
  for (std::uint64_t bits = 0; bits < (std::uint64_t{1} << n); ++bits) {
    std::vector<bool> in;
    for (std::size_t i = 0; i < n; ++i) in.push_back((bits >> i) & 1);
    const auto out = c.simulate(in);
    bool all = true;
    for (const bool o : out) all = all && o;
    count += all;
  }
  return count;
}

Circuit random_circuit(std::size_t inputs, std::size_t gates, Rng& rng) {
  Circuit c;
  std::vector<Sig> pool;
  for (std::size_t i = 0; i < inputs; ++i) pool.push_back(c.add_input());
  for (std::size_t g = 0; g < gates; ++g) {
    const Sig a = pool[rng.below(pool.size())] ^ (rng.flip() ? 1u : 0u);
    const Sig b = pool[rng.below(pool.size())] ^ (rng.flip() ? 1u : 0u);
    pool.push_back(rng.flip() ? c.land(a, b) : c.lxor(a, b));
  }
  c.add_output(pool.back());
  return c;
}

TEST(Tseitin, AndGateCnf) {
  Circuit c;
  const Sig a = c.add_input();
  const Sig b = c.add_input();
  c.add_output(c.land(a, b));
  const auto enc = tseitin_encode(c);
  EXPECT_EQ(enc.input_vars.size(), 2u);
  // Exactly one satisfying input assignment (a=b=1); aux vars are defined.
  EXPECT_EQ(test::brute_force_count(enc.cnf), 1u);
}

TEST(Tseitin, SamplingSetIsInputs) {
  Circuit c;
  const Sig a = c.add_input();
  const Sig b = c.add_input();
  c.add_output(c.lor(a, b));
  const auto enc = tseitin_encode(c);
  ASSERT_TRUE(enc.cnf.sampling_set().has_value());
  auto expected = enc.input_vars;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(*enc.cnf.sampling_set(), expected);
}

TEST(Tseitin, NoAssertOutputsKeepsAllEvaluations) {
  Circuit c;
  const Sig a = c.add_input();
  const Sig b = c.add_input();
  c.add_output(c.land(a, b));
  TseitinOptions opts;
  opts.assert_outputs = false;
  const auto enc = tseitin_encode(c, opts);
  // Every input assignment extends uniquely: count = 2^inputs.
  EXPECT_EQ(test::brute_force_count(enc.cnf), 4u);
}

TEST(Tseitin, OutputLitsReflectCircuitOutputs) {
  Circuit c;
  const Sig a = c.add_input();
  c.add_output(Circuit::lnot(a));
  TseitinOptions opts;
  opts.assert_outputs = true;
  const auto enc = tseitin_encode(c, opts);
  const auto models = test::brute_force_models(enc.cnf);
  ASSERT_EQ(models.size(), 1u);
  EXPECT_EQ(models[0][static_cast<std::size_t>(enc.input_vars[0])],
            lbool::False);
}

class TseitinFuzz : public ::testing::TestWithParam<int> {};

TEST_P(TseitinFuzz, ModelCountEqualsSatisfyingInputs) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 389 + 11);
  const Circuit c = random_circuit(6, 12, rng);
  const auto enc = tseitin_encode(c);
  if (enc.cnf.num_vars() > 22) GTEST_SKIP() << "too large for brute force";
  EXPECT_EQ(test::brute_force_count(enc.cnf), count_satisfying_inputs(c));
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, TseitinFuzz, ::testing::Range(0, 12));

class TseitinIndependenceFuzz : public ::testing::TestWithParam<int> {};

TEST_P(TseitinIndependenceFuzz, InputsAreIndependentSupport) {
  // No two models share the same input projection: the inputs uniquely
  // determine every Tseitin variable.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 97 + 29);
  const Circuit c = random_circuit(5, 10, rng);
  const auto enc = tseitin_encode(c);
  if (enc.cnf.num_vars() > 20) GTEST_SKIP() << "too large for brute force";
  const auto models = test::brute_force_models(enc.cnf);
  std::map<std::vector<int>, int> by_projection;
  for (const auto& m : models) {
    std::vector<int> key;
    for (const Var v : enc.input_vars)
      key.push_back(static_cast<int>(m[static_cast<std::size_t>(v)]));
    ++by_projection[key];
  }
  for (const auto& [key, count] : by_projection) EXPECT_EQ(count, 1);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, TseitinIndependenceFuzz,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace unigen
