// Tests for the ideal US baseline (exact counter + uniform index).

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/uniform_sampler.hpp"
#include "helpers.hpp"

namespace unigen {
namespace {

TEST(UniformSampler, CountMatchesBruteForce) {
  Rng formula_rng(1);
  for (int round = 0; round < 8; ++round) {
    const Cnf cnf = test::random_cnf(9, 20, 3, formula_rng);
    Rng rng(static_cast<std::uint64_t>(round));
    UniformSampler us(cnf, {}, rng);
    ASSERT_TRUE(us.prepare());
    EXPECT_EQ(us.count(), BigUint(test::brute_force_count(cnf)));
  }
}

TEST(UniformSampler, UnsatReportsUnsat) {
  Cnf cnf(1);
  cnf.add_clause({Lit(0, false)});
  cnf.add_clause({Lit(0, true)});
  Rng rng(2);
  UniformSampler us(cnf, {}, rng);
  ASSERT_TRUE(us.prepare());
  EXPECT_TRUE(us.count().is_zero());
  EXPECT_EQ(us.sample().status, SampleResult::Status::kUnsat);
}

TEST(UniformSampler, MaterializedSamplesAreValidAndUniform) {
  Cnf cnf(3);
  cnf.add_clause({Lit(0, false), Lit(1, false), Lit(2, false)});  // 7 models
  Rng rng(3);
  UniformSampler us(cnf, {}, rng);
  ASSERT_TRUE(us.prepare());
  ASSERT_TRUE(us.materialized());
  std::map<std::vector<int>, int> histogram;
  const int kSamples = 7000;
  for (int i = 0; i < kSamples; ++i) {
    const auto r = us.sample();
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(cnf.satisfied_by(r.witness));
    std::vector<int> key;
    for (const auto v : r.witness) key.push_back(static_cast<int>(v));
    ++histogram[key];
  }
  ASSERT_EQ(histogram.size(), 7u);
  for (const auto& [key, count] : histogram)
    EXPECT_NEAR(static_cast<double>(count), kSamples / 7.0,
                4.0 * std::sqrt(kSamples / 7.0));
}

TEST(UniformSampler, SampleIndexStaysBelowCount) {
  Rng formula_rng(5);
  const Cnf cnf = test::random_cnf(10, 18, 3, formula_rng);
  Rng rng(7);
  UniformSampler us(cnf, {}, rng);
  ASSERT_TRUE(us.prepare());
  ASSERT_FALSE(us.count().is_zero());
  for (int i = 0; i < 500; ++i) EXPECT_LT(us.sample_index(), us.count());
}

TEST(UniformSampler, IndexOnlyModeForLargeSpaces) {
  // 2^30 models: too many to materialize, count still exact.
  Cnf cnf(30);
  Rng rng(9);
  UniformSamplerOptions opts;
  opts.materialize_bound = 1024;
  UniformSampler us(cnf, opts, rng);
  ASSERT_TRUE(us.prepare());
  EXPECT_FALSE(us.materialized());
  EXPECT_EQ(us.count(), BigUint::pow2(30));
  EXPECT_EQ(us.sample().status, SampleResult::Status::kFail);
  EXPECT_LT(us.sample_index(), us.count());
}

TEST(UniformSampler, XorFormulaCount) {
  Cnf cnf(12);
  cnf.add_xor({0, 1, 2, 3, 4}, true);
  cnf.add_xor({4, 5, 6}, false);
  Rng rng(11);
  UniformSampler us(cnf, {}, rng);
  ASSERT_TRUE(us.prepare());
  EXPECT_EQ(us.count(), BigUint::pow2(10));
}

}  // namespace
}  // namespace unigen
