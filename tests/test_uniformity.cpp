// Seed-fixed chi-square uniformity regression for the *hashed* sampling
// path.  The acceptance band [loThresh, hiThresh] of Algorithm 2 (with its
// √2 factors) is what Theorem 1's almost-uniformity rests on; a regression
// in compute_kappa_pivot or in the accept-cell loop shifts the per-witness
// distribution, which this test catches as an inflated chi-square statistic
// against the brute-forced witness space.

#include <gtest/gtest.h>

#include <map>

#include "core/unigen.hpp"
#include "helpers.hpp"
#include "service/sampler_pool.hpp"

namespace unigen {
namespace {

/// 112 models over 7 vars: small enough that N draws resolve per-witness
/// frequencies, large enough (> hiThresh(ε=6) = 89) to stay in hashed mode.
Cnf chi_square_formula() {
  Cnf cnf(7);
  cnf.add_clause({Lit(0, false), Lit(1, false), Lit(2, false)});
  return cnf;
}

double chi_square_per_df(const std::map<Model, int>& histogram,
                         const std::vector<Model>& truth, int draws) {
  const double expected =
      static_cast<double>(draws) / static_cast<double>(truth.size());
  double chi2 = 0.0;
  for (const Model& m : truth) {
    const auto it = histogram.find(m);
    const double observed =
        it == histogram.end() ? 0.0 : static_cast<double>(it->second);
    const double d = observed - expected;
    chi2 += d * d / expected;
  }
  return chi2 / static_cast<double>(truth.size() - 1);
}

TEST(Uniformity, HashedPathChiSquareRegression) {
  const Cnf cnf = chi_square_formula();
  const auto truth = test::brute_force_models(cnf);
  ASSERT_EQ(truth.size(), 112u);
  Rng rng(20140601);  // seed-fixed: this test is fully deterministic
  UniGen sampler(cnf, {}, rng);
  ASSERT_TRUE(sampler.prepare());
  ASSERT_FALSE(sampler.stats().trivial) << "fixture must stay hashed";

  std::map<Model, int> histogram;
  int ok = 0;
  constexpr int kRequests = 6000;
  for (int i = 0; i < kRequests; ++i) {
    const auto r = sampler.sample();
    if (!r.ok()) continue;
    ++ok;
    ++histogram[r.witness];
  }
  ASSERT_GT(ok, kRequests / 2);
  // Under perfect uniformity chi2/df concentrates around 1 (stddev
  // sqrt(2/df) ≈ 0.13 here).  The band-regression failure modes push it
  // well above: re-measure before loosening this bound.
  EXPECT_LT(chi_square_per_df(histogram, truth, ok), 1.5);
  // Every witness should appear — the lower almost-uniformity bound keeps
  // each probability >= 1/((1+ε)(|R_F|-1)).
  EXPECT_EQ(histogram.size(), truth.size());
}

TEST(Uniformity, ParallelPrepareChiSquareRegression) {
  // Seed-fixed regression with the *whole* pipeline parallel: prepare()'s
  // ApproxMC call fans across the pool width (counter_threads resolves to
  // it) and sampling fans across the workers.  A q shifted by a counting
  // regression shows up here as an inflated chi-square statistic.
  const Cnf cnf = chi_square_formula();
  const auto truth = test::brute_force_models(cnf);
  SamplerPoolOptions opts;
  opts.num_threads = 4;
  opts.seed = 20140603;
  SamplerPool pool(cnf, opts);
  ASSERT_TRUE(pool.prepare());
  ASSERT_EQ(pool.prepared().mode, UniGenPrepared::Mode::kHashed);
  EXPECT_GE(pool.stats().prepare.counter_solver_rebuilds, 1u);
  std::map<Model, int> histogram;
  int ok = 0;
  for (const auto& r : pool.sample_many(6000)) {
    if (!r.ok()) continue;
    ++ok;
    ++histogram[r.witness];
  }
  ASSERT_GT(ok, 3000);
  EXPECT_LT(chi_square_per_df(histogram, truth, ok), 1.5);
  EXPECT_EQ(histogram.size(), truth.size());
}

TEST(Uniformity, ParallelServiceChiSquareMatchesSingleEngine) {
  // The pool's per-thread engines and keyed RNG streams must not skew the
  // distribution: same chi-square criterion, sampled through the service.
  const Cnf cnf = chi_square_formula();
  const auto truth = test::brute_force_models(cnf);
  SamplerPoolOptions opts;
  opts.num_threads = 4;
  opts.seed = 20140602;
  SamplerPool pool(cnf, opts);
  ASSERT_TRUE(pool.prepare());

  std::map<Model, int> histogram;
  int ok = 0;
  const auto results = pool.sample_many(6000);
  for (const auto& r : results) {
    if (!r.ok()) continue;
    ++ok;
    ++histogram[r.witness];
  }
  ASSERT_GT(ok, 3000);
  EXPECT_LT(chi_square_per_df(histogram, truth, ok), 1.5);
  EXPECT_EQ(histogram.size(), truth.size());
}

}  // namespace
}  // namespace unigen
