// Tests for UniGen (Algorithm 1): witness validity, both code paths
// (trivial and hashed), the Theorem-1 success probability, and statistical
// uniformity on formulas small enough to brute-force.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "core/unigen.hpp"
#include "helpers.hpp"

namespace unigen {
namespace {

using test::brute_force_models;
using test::random_cnf;

std::vector<int> witness_key(const Model& m, const std::vector<Var>& vars) {
  std::vector<int> key;
  key.reserve(vars.size());
  for (const Var v : vars)
    key.push_back(static_cast<int>(m[static_cast<std::size_t>(v)]));
  return key;
}

/// A CNF with a solution count comfortably above hiThresh(ε=6) = 89 so the
/// hashed path is exercised: 10 vars, a few clauses, 504 models.
Cnf hashed_mode_formula() {
  Cnf cnf(10);
  cnf.add_clause({Lit(0, false), Lit(1, false), Lit(2, false)});
  cnf.add_clause({Lit(3, false), Lit(4, true)});
  cnf.add_clause({Lit(5, false), Lit(6, false), Lit(7, true)});
  cnf.add_clause({Lit(8, false), Lit(9, false), Lit(0, true)});
  return cnf;
}

TEST(UniGen, RejectsTooSmallEpsilon) {
  Cnf cnf(3);
  Rng rng(1);
  UniGenOptions opts;
  opts.epsilon = 1.5;
  UniGen sampler(cnf, opts, rng);
  EXPECT_THROW(sampler.prepare(), std::invalid_argument);
}

TEST(UniGen, UnsatFormulaReportsUnsat) {
  Cnf cnf(2);
  cnf.add_clause({Lit(0, false)});
  cnf.add_clause({Lit(0, true)});
  Rng rng(2);
  UniGen sampler(cnf, {}, rng);
  ASSERT_TRUE(sampler.prepare());
  EXPECT_EQ(sampler.sample().status, SampleResult::Status::kUnsat);
}

TEST(UniGen, TrivialModeWhenFewWitnesses) {
  // 3 witnesses of (a|b) over 2 vars: well below hiThresh.
  Cnf cnf(2);
  cnf.add_clause({Lit(0, false), Lit(1, false)});
  Rng rng(3);
  UniGen sampler(cnf, {}, rng);
  ASSERT_TRUE(sampler.prepare());
  EXPECT_TRUE(sampler.stats().trivial);
  for (int i = 0; i < 50; ++i) {
    const auto r = sampler.sample();
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(cnf.satisfied_by(r.witness));
  }
  EXPECT_DOUBLE_EQ(sampler.stats().success_rate(), 1.0);
}

TEST(UniGen, TrivialModeIsExactlyUniform) {
  Cnf cnf(3);
  cnf.add_clause({Lit(0, false), Lit(1, false), Lit(2, false)});  // 7 models
  Rng rng(5);
  UniGen sampler(cnf, {}, rng);
  ASSERT_TRUE(sampler.prepare());
  std::map<std::vector<int>, int> histogram;
  const int kSamples = 7000;
  const std::vector<Var> all{0, 1, 2};
  for (int i = 0; i < kSamples; ++i) {
    const auto r = sampler.sample();
    ASSERT_TRUE(r.ok());
    ++histogram[witness_key(r.witness, all)];
  }
  ASSERT_EQ(histogram.size(), 7u);
  for (const auto& [key, count] : histogram) {
    EXPECT_NEAR(static_cast<double>(count), kSamples / 7.0,
                4.0 * std::sqrt(kSamples / 7.0));
  }
}

TEST(UniGen, HashedModeProducesValidWitnesses) {
  const Cnf cnf = hashed_mode_formula();
  const auto truth = brute_force_models(cnf);
  ASSERT_GT(truth.size(), 89u) << "fixture must exceed hiThresh";
  Rng rng(7);
  UniGen sampler(cnf, {}, rng);
  ASSERT_TRUE(sampler.prepare());
  EXPECT_FALSE(sampler.stats().trivial);
  EXPECT_GT(sampler.stats().q, 0);
  int ok = 0;
  for (int i = 0; i < 200; ++i) {
    const auto r = sampler.sample();
    if (r.ok()) {
      ++ok;
      EXPECT_TRUE(cnf.satisfied_by(r.witness));
    } else {
      EXPECT_EQ(r.status, SampleResult::Status::kFail);
    }
  }
  EXPECT_GT(ok, 0);
}

TEST(UniGen, SuccessProbabilityBeatsTheorem1Bound) {
  // Theorem 1 guarantees >= 0.62; the paper observes ~1.  Assert the
  // theorem's bound with margin over a deterministic seed.
  const Cnf cnf = hashed_mode_formula();
  Rng rng(11);
  UniGen sampler(cnf, {}, rng);
  ASSERT_TRUE(sampler.prepare());
  const int kSamples = 300;
  for (int i = 0; i < kSamples; ++i) sampler.sample();
  EXPECT_GE(sampler.stats().success_rate(), 0.62);
  EXPECT_EQ(sampler.stats().samples_requested,
            static_cast<std::uint64_t>(kSamples));
}

TEST(UniGen, CoverageOfWitnessSpace) {
  // Almost-uniformity implies every witness has probability >=
  // 1/((1+ε)(|R_F|-1)); with enough draws nearly all witnesses appear.
  const Cnf cnf = hashed_mode_formula();
  const auto truth = brute_force_models(cnf);
  Rng rng(13);
  UniGen sampler(cnf, {}, rng);
  ASSERT_TRUE(sampler.prepare());
  std::set<std::vector<int>> seen;
  std::vector<Var> all(10);
  for (Var v = 0; v < 10; ++v) all[static_cast<std::size_t>(v)] = v;
  const int kSamples = 4000;
  for (int i = 0; i < kSamples; ++i) {
    const auto r = sampler.sample();
    if (r.ok()) seen.insert(witness_key(r.witness, all));
  }
  EXPECT_GE(static_cast<double>(seen.size()),
            0.9 * static_cast<double>(truth.size()));
}

TEST(UniGen, FrequenciesRespectLooseAlmostUniformBand) {
  // Per-witness frequency stays within a widened (1+ε) band of uniform.
  const Cnf cnf = hashed_mode_formula();
  const auto truth = brute_force_models(cnf);
  const double r_f = static_cast<double>(truth.size());
  Rng rng(17);
  UniGenOptions opts;
  opts.epsilon = 6.0;
  UniGen sampler(cnf, opts, rng);
  ASSERT_TRUE(sampler.prepare());
  std::map<std::vector<int>, int> histogram;
  std::vector<Var> all(10);
  for (Var v = 0; v < 10; ++v) all[static_cast<std::size_t>(v)] = v;
  int ok = 0;
  const int kSamples = 6000;
  for (int i = 0; i < kSamples; ++i) {
    const auto r = sampler.sample();
    if (!r.ok()) continue;
    ++ok;
    ++histogram[witness_key(r.witness, all)];
  }
  ASSERT_GT(ok, kSamples / 2);
  const double uniform = static_cast<double>(ok) / r_f;
  for (const auto& [key, count] : histogram) {
    // Theorem-1 band is (1+ε) each way; allow 2x statistical slack.
    EXPECT_LE(static_cast<double>(count), 2.0 * 7.0 * uniform);
  }
  // In practice the distribution is far tighter than the guarantee: the
  // most frequent witness should be within ~2x of uniform.
  int max_count = 0;
  for (const auto& [key, count] : histogram) max_count = std::max(max_count, count);
  EXPECT_LE(static_cast<double>(max_count), 2.0 * uniform + 5 * std::sqrt(uniform));
}

TEST(UniGen, PrepareIsAmortizedAcrossSamples) {
  const Cnf cnf = hashed_mode_formula();
  Rng rng(19);
  UniGen sampler(cnf, {}, rng);
  ASSERT_TRUE(sampler.prepare());
  const auto prepare_calls = sampler.stats().prepare_bsat_calls;
  EXPECT_GT(prepare_calls, 0u);
  ASSERT_TRUE(sampler.prepare());  // idempotent
  EXPECT_EQ(sampler.stats().prepare_bsat_calls, prepare_calls);
  sampler.sample();
  sampler.sample();
  EXPECT_EQ(sampler.stats().prepare_bsat_calls, prepare_calls);
  EXPECT_GT(sampler.stats().sample_bsat_calls, 0u);
}

TEST(UniGen, XorRowsDrawnOverSamplingSetOnly) {
  // With |S| = 8 on a 16-var formula the average row length must be ≈ 4,
  // not ≈ 8 — the paper's central optimization, observable in the stats.
  Cnf mirrored(16);
  mirrored.add_clause({Lit(0, false), Lit(1, false), Lit(2, false)});
  mirrored.add_clause({Lit(3, false), Lit(4, false), Lit(5, true)});
  mirrored.add_clause({Lit(6, false), Lit(7, true)});
  // Mirror vars 0..7 onto 8..15 so {0..7} is an independent support;
  // |R_F| = 7/8 * 7/8 * 3/4 * 256 = 147 > hiThresh, forcing hashed mode.
  for (Var v = 0; v < 8; ++v) mirrored.add_xor({v, v + 8}, false);
  mirrored.set_sampling_set({0, 1, 2, 3, 4, 5, 6, 7});
  Rng rng(23);
  UniGen sampler(mirrored, {}, rng);
  ASSERT_TRUE(sampler.prepare());
  EXPECT_FALSE(sampler.stats().trivial);
  int ok = 0;
  for (int i = 0; i < 100; ++i) ok += sampler.sample().ok();
  EXPECT_GT(ok, 0);
  ASSERT_GT(sampler.stats().total_xor_rows, 0u);
  EXPECT_LT(sampler.stats().average_xor_length(), 5.5);
  EXPECT_GT(sampler.stats().average_xor_length(), 2.5);
  // Witnesses are still full assignments satisfying the whole formula.
  Rng rng2(24);
  UniGen sampler2(mirrored, {}, rng2);
  const auto r = sampler2.sample();
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(mirrored.satisfied_by(r.witness));
}

TEST(UniGen, SampleWithoutExplicitPrepareWorks) {
  Cnf cnf(2);
  cnf.add_clause({Lit(0, false), Lit(1, false)});
  Rng rng(29);
  UniGen sampler(cnf, {}, rng);
  const auto r = sampler.sample();  // implicit prepare
  EXPECT_TRUE(r.ok());
}

TEST(UniGen, StatsRecordThresholds) {
  const Cnf cnf = hashed_mode_formula();
  Rng rng(31);
  UniGenOptions opts;
  opts.epsilon = 6.0;
  UniGen sampler(cnf, opts, rng);
  ASSERT_TRUE(sampler.prepare());
  EXPECT_EQ(sampler.stats().pivot, 40u);
  EXPECT_EQ(sampler.stats().hi_thresh, 89u);
  EXPECT_GT(sampler.stats().approx_log2_count, 6.0);  // |R_F| > 64
}

}  // namespace
}  // namespace unigen
