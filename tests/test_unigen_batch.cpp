// Tests for the UniGen2-style batched sampling extension.

#include <gtest/gtest.h>

#include <set>

#include "core/unigen.hpp"
#include "helpers.hpp"

namespace unigen {
namespace {

Cnf hashed_mode_formula() {
  Cnf cnf(10);
  cnf.add_clause({Lit(0, false), Lit(1, false), Lit(2, false)});
  cnf.add_clause({Lit(3, false), Lit(4, true)});
  cnf.add_clause({Lit(5, false), Lit(6, false), Lit(7, true)});
  cnf.add_clause({Lit(8, false), Lit(9, false), Lit(0, true)});
  return cnf;
}

std::vector<int> key_of(const Model& m) {
  std::vector<int> key;
  for (const auto v : m) key.push_back(static_cast<int>(v));
  return key;
}

TEST(UniGenBatch, EmptyRequestYieldsNothing) {
  Cnf cnf(2);
  cnf.add_clause({Lit(0, false), Lit(1, false)});
  Rng rng(1);
  UniGen sampler(cnf, {}, rng);
  EXPECT_TRUE(sampler.sample_batch(0).empty());
}

TEST(UniGenBatch, TrivialModeBatchIsDistinctAndValid) {
  Cnf cnf(3);
  cnf.add_clause({Lit(0, false), Lit(1, false), Lit(2, false)});  // 7 models
  Rng rng(2);
  UniGen sampler(cnf, {}, rng);
  ASSERT_TRUE(sampler.prepare());
  for (const std::size_t want : {1u, 3u, 7u, 20u}) {
    const auto batch = sampler.sample_batch(want);
    EXPECT_EQ(batch.size(), std::min<std::size_t>(want, 7));
    std::set<std::vector<int>> distinct;
    for (const auto& m : batch) {
      EXPECT_TRUE(cnf.satisfied_by(m));
      distinct.insert(key_of(m));
    }
    EXPECT_EQ(distinct.size(), batch.size());
  }
}

TEST(UniGenBatch, HashedModeBatchIsDistinctAndValid) {
  const Cnf cnf = hashed_mode_formula();
  Rng rng(3);
  UniGen sampler(cnf, {}, rng);
  ASSERT_TRUE(sampler.prepare());
  int produced = 0;
  for (int round = 0; round < 20 && produced == 0; ++round) {
    const auto batch = sampler.sample_batch(8);
    produced += static_cast<int>(batch.size());
    std::set<std::vector<int>> distinct;
    for (const auto& m : batch) {
      EXPECT_TRUE(cnf.satisfied_by(m));
      distinct.insert(key_of(m));
    }
    EXPECT_EQ(distinct.size(), batch.size());
    EXPECT_LE(batch.size(), 8u);
  }
  EXPECT_GT(produced, 0);
}

TEST(UniGenBatch, BatchRespectsCellBound) {
  // max_batch larger than any cell: batch size is bounded by hiThresh.
  const Cnf cnf = hashed_mode_formula();
  Rng rng(5);
  UniGen sampler(cnf, {}, rng);
  ASSERT_TRUE(sampler.prepare());
  const auto batch = sampler.sample_batch(10000);
  EXPECT_LE(batch.size(), sampler.stats().hi_thresh);
}

TEST(UniGenBatch, UnsatYieldsEmpty) {
  Cnf cnf(1);
  cnf.add_clause({Lit(0, false)});
  cnf.add_clause({Lit(0, true)});
  Rng rng(7);
  UniGen sampler(cnf, {}, rng);
  EXPECT_TRUE(sampler.sample_batch(5).empty());
}

TEST(UniGenBatch, StatsAccountedLikeSample) {
  // Every batch request is one lines-12–22 run and must be visible in the
  // stats: requested/ok/failed/timed_out, exactly as sample() accounts.
  const Cnf cnf = hashed_mode_formula();
  Rng rng(13);
  UniGen sampler(cnf, {}, rng);
  ASSERT_TRUE(sampler.prepare());
  EXPECT_EQ(sampler.stats().samples_requested, 0u);
  constexpr int kCalls = 25;
  std::uint64_t nonempty = 0;
  for (int i = 0; i < kCalls; ++i)
    nonempty += sampler.sample_batch(4).empty() ? 0 : 1;
  const auto& st = sampler.stats();
  EXPECT_EQ(st.samples_requested, static_cast<std::uint64_t>(kCalls));
  EXPECT_EQ(st.samples_ok, nonempty);
  EXPECT_EQ(st.samples_ok + st.samples_failed + st.samples_timed_out,
            static_cast<std::uint64_t>(kCalls));
  EXPECT_EQ(st.samples_timed_out, 0u);
  EXPECT_GT(st.sample_bsat_calls, 0u);
}

TEST(UniGenBatch, TrivialModeBatchCountsAsSuccess) {
  Cnf cnf(3);
  cnf.add_clause({Lit(0, false), Lit(1, false), Lit(2, false)});
  Rng rng(17);
  UniGen sampler(cnf, {}, rng);
  ASSERT_TRUE(sampler.prepare());
  EXPECT_FALSE(sampler.sample_batch(3).empty());
  EXPECT_EQ(sampler.stats().samples_requested, 1u);
  EXPECT_EQ(sampler.stats().samples_ok, 1u);
  // A zero-size request is a no-op, not a failed request.
  EXPECT_TRUE(sampler.sample_batch(0).empty());
  EXPECT_EQ(sampler.stats().samples_requested, 1u);
}

TEST(UniGenBatch, TimeoutDistinguishedFromEmptyCell) {
  // An expired sample budget must surface as samples_timed_out, not be
  // silently conflated with the ⊥ (empty-cell) outcome.
  const Cnf cnf = hashed_mode_formula();
  Rng rng(19);
  UniGenOptions opts;
  opts.sample_timeout_s = 0.0;  // the accept-cell deadline expires at once
  UniGen sampler(cnf, opts, rng);
  ASSERT_TRUE(sampler.prepare());
  EXPECT_TRUE(sampler.sample_batch(4).empty());
  const auto& st = sampler.stats();
  EXPECT_EQ(st.samples_requested, 1u);
  EXPECT_EQ(st.samples_timed_out, 1u);
  EXPECT_EQ(st.samples_failed, 0u);
  EXPECT_EQ(st.samples_ok, 0u);
}

TEST(UniGenBatch, BatchCoverageAccumulates) {
  // Batches from many cells eventually cover most of the witness space.
  const Cnf cnf = hashed_mode_formula();
  const auto truth = test::brute_force_models(cnf);
  Rng rng(11);
  UniGen sampler(cnf, {}, rng);
  ASSERT_TRUE(sampler.prepare());
  std::set<std::vector<int>> seen;
  for (int round = 0; round < 400; ++round) {
    for (const auto& m : sampler.sample_batch(10)) seen.insert(key_of(m));
  }
  EXPECT_GE(static_cast<double>(seen.size()),
            0.8 * static_cast<double>(truth.size()));
}

}  // namespace
}  // namespace unigen
