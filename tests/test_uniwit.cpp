// Tests for the UniWit baseline: validity, trivial case, and the
// structural properties the paper contrasts with UniGen (full-support
// hashing, no amortization).

#include <gtest/gtest.h>

#include <set>

#include "core/uniwit.hpp"
#include "helpers.hpp"

namespace unigen {
namespace {

Cnf medium_formula() {
  // Same shape as the UniGen fixture: several hundred witnesses.
  Cnf cnf(10);
  cnf.add_clause({Lit(0, false), Lit(1, false), Lit(2, false)});
  cnf.add_clause({Lit(3, false), Lit(4, true)});
  cnf.add_clause({Lit(5, false), Lit(6, false), Lit(7, true)});
  cnf.add_clause({Lit(8, false), Lit(9, false), Lit(0, true)});
  return cnf;
}

TEST(UniWit, UnsatFormulaReportsUnsat) {
  Cnf cnf(1);
  cnf.add_clause({Lit(0, false)});
  cnf.add_clause({Lit(0, true)});
  Rng rng(1);
  UniWit sampler(cnf, {}, rng);
  EXPECT_EQ(sampler.sample().status, SampleResult::Status::kUnsat);
}

TEST(UniWit, TrivialCaseUniformDraw) {
  Cnf cnf(2);
  cnf.add_clause({Lit(0, false), Lit(1, false)});
  Rng rng(2);
  UniWit sampler(cnf, {}, rng);
  for (int i = 0; i < 30; ++i) {
    const auto r = sampler.sample();
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(cnf.satisfied_by(r.witness));
  }
}

TEST(UniWit, HashedPathProducesValidWitnesses) {
  const Cnf cnf = medium_formula();
  Rng rng(3);
  UniWit sampler(cnf, {}, rng);
  int ok = 0;
  for (int i = 0; i < 60; ++i) {
    const auto r = sampler.sample();
    if (r.ok()) {
      ++ok;
      EXPECT_TRUE(cnf.satisfied_by(r.witness));
    }
  }
  // CAV'13 bounds success below by 0.125; observed is far higher.
  EXPECT_GT(ok, 60 / 8);
}

TEST(UniWit, HashesOverFullSupportEvenWithSamplingSet) {
  // UniWit ignores the sampling set: average XOR length ≈ |X|/2 = 5,
  // even though |S|/2 would be 2.5.  This is the scalability gap UniGen
  // closes (paper Section 4).
  Cnf cnf = medium_formula();
  cnf.set_sampling_set({0, 1, 2, 3, 4});
  Rng rng(5);
  UniWit sampler(cnf, {}, rng);
  for (int i = 0; i < 40; ++i) sampler.sample();
  ASSERT_GT(sampler.stats().total_xor_rows, 0u);
  EXPECT_GT(sampler.stats().average_xor_length(), 3.5);
}

TEST(UniWit, NoAmortizationAcrossSamples) {
  // Every sample pays at least the base enumeration plus the m-scan:
  // bsat_calls grows by >= 2 per hashed-path sample.
  const Cnf cnf = medium_formula();
  Rng rng(7);
  UniWit sampler(cnf, {}, rng);
  sampler.sample();
  const auto after_one = sampler.stats().bsat_calls;
  EXPECT_GE(after_one, 2u);
  for (int i = 0; i < 9; ++i) sampler.sample();
  EXPECT_GE(sampler.stats().bsat_calls, after_one + 9 * 2);
}

TEST(UniWit, CoverageOfWitnessSpace) {
  const Cnf cnf = medium_formula();
  const auto truth = test::brute_force_models(cnf);
  Rng rng(9);
  UniWit sampler(cnf, {}, rng);
  std::set<std::vector<int>> seen;
  for (int i = 0; i < 800; ++i) {
    const auto r = sampler.sample();
    if (!r.ok()) continue;
    std::vector<int> key;
    for (const auto v : r.witness) key.push_back(static_cast<int>(v));
    seen.insert(key);
  }
  // Near-uniform lower bound: most witnesses reachable; loose threshold.
  EXPECT_GT(static_cast<double>(seen.size()),
            0.5 * static_cast<double>(truth.size()));
}

TEST(UniWit, TimeoutReported) {
  const Cnf cnf = medium_formula();
  Rng rng(11);
  UniWitOptions opts;
  opts.sample_timeout_s = 0.0;
  UniWit sampler(cnf, opts, rng);
  EXPECT_EQ(sampler.sample().status, SampleResult::Status::kTimeout);
}

}  // namespace
}  // namespace unigen
