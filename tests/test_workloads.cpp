// Tests for the benchmark generators: satisfiability, sampling-set shape,
// known counts, determinism.

#include <gtest/gtest.h>

#include "counting/exact_counter.hpp"
#include "sat/enumerator.hpp"
#include "sat/solver.hpp"
#include "support/independent_support.hpp"
#include "workloads/circuits.hpp"
#include "workloads/sketch.hpp"
#include "workloads/squaring.hpp"
#include "workloads/suite.hpp"

namespace unigen {
namespace {

using namespace workloads;

TEST(CircuitBench, SatisfiableWithExpectedSupport) {
  CircuitParityOptions opts;
  opts.state_bits = 12;
  opts.input_bits = 6;
  opts.rounds = 2;
  opts.parity_constraints = 4;
  opts.seed = 42;
  const Cnf cnf = make_circuit_parity_bench(opts, "probe");
  ASSERT_TRUE(cnf.sampling_set().has_value());
  EXPECT_EQ(cnf.sampling_set()->size(), 18u);  // state + inputs
  EXPECT_GT(cnf.num_vars(), 18);               // Tseitin core on top
  Solver s;
  s.load(cnf);
  EXPECT_EQ(s.solve(), lbool::True);
}

TEST(CircuitBench, DeterministicPerSeed) {
  CircuitParityOptions opts;
  opts.seed = 7;
  const Cnf a = make_circuit_parity_bench(opts, "a");
  const Cnf b = make_circuit_parity_bench(opts, "b");
  EXPECT_EQ(a.num_vars(), b.num_vars());
  EXPECT_EQ(a.clauses(), b.clauses());
  opts.seed = 8;
  const Cnf c = make_circuit_parity_bench(opts, "c");
  EXPECT_NE(a.clauses(), c.clauses());
}

TEST(AffineBench, CountMatchesEnumeration) {
  AffineParityOptions opts;
  opts.input_bits = 12;
  opts.rounds = 2;
  opts.parity_constraints = 5;
  opts.seed = 3;
  const AffineParityBench bench = make_affine_parity_bench(opts, "affine");
  ASSERT_FALSE(bench.witness_count.is_zero());
  Solver s;
  s.load(bench.cnf);
  EnumerateOptions eopts;
  eopts.store_models = false;
  eopts.projection = bench.cnf.sampling_set_or_all();
  const auto r = enumerate_models(s, eopts);
  ASSERT_TRUE(r.exhausted);
  EXPECT_EQ(BigUint(r.count), bench.witness_count);
}

TEST(AffineBench, CountMatchesExactCounterProjected) {
  AffineParityOptions opts;
  opts.input_bits = 10;
  opts.rounds = 3;
  opts.parity_constraints = 4;
  opts.seed = 9;
  const AffineParityBench bench = make_affine_parity_bench(opts, "affine2");
  // The exact counter counts over all variables; Tseitin auxiliaries are
  // defined, so the total equals the projected count.
  ExactCounter counter;
  const auto counted = counter.count(bench.cnf);
  ASSERT_TRUE(counted.has_value());
  EXPECT_EQ(*counted, bench.witness_count);
}

TEST(AffineBench, Case110LikeHas16384Witnesses) {
  const AffineParityBench bench = make_case110_like(20, 6);
  EXPECT_EQ(bench.rank, 6u);
  EXPECT_EQ(bench.witness_count, BigUint::pow2(14));  // 16384, as in Fig. 1
  Solver s;
  s.load(bench.cnf);
  EXPECT_EQ(s.solve(), lbool::True);
}

TEST(SquaringBench, SatisfiableWithSupport72) {
  SquaringOptions opts;
  opts.operand_bits = 36;
  opts.seed = 7;
  const Cnf cnf = make_squaring_bench(opts, "squaring");
  ASSERT_TRUE(cnf.sampling_set().has_value());
  EXPECT_EQ(cnf.sampling_set()->size(), 72u);  // as in the paper's rows
  EXPECT_GT(cnf.num_vars(), 800);
  Solver s;
  s.load(cnf);
  EXPECT_EQ(s.solve(), lbool::True);
}

TEST(SquaringBench, SmallInstanceCountIsPlausible) {
  // Tiny squaring instance: count the preimage by enumeration and check
  // it is nontrivial (neither empty nor the full input space).
  SquaringOptions opts;
  opts.operand_bits = 5;
  opts.product_bits = 8;
  opts.constrained_bits = 4;
  opts.seed = 3;
  const Cnf cnf = make_squaring_bench(opts, "sq_small");
  Solver s;
  s.load(cnf);
  EnumerateOptions eopts;
  eopts.store_models = false;
  eopts.projection = cnf.sampling_set_or_all();
  const auto r = enumerate_models(s, eopts);
  ASSERT_TRUE(r.exhausted);
  EXPECT_GT(r.count, 0u);
  EXPECT_LT(r.count, 1u << 10);
}

TEST(SketchBench, CountKnownByConstruction) {
  SketchOptions opts;
  opts.spec_input_bits = 4;
  opts.selector_bits = 6;
  opts.mode_bits = 5;
  opts.threshold = 11;
  opts.seed = 5;
  const SketchBench bench = make_sketch_bench(opts, "sketch_small");
  // classes = min(4,6) = 4: valid selectors = 2^2; count = 11 * 4 = 44.
  EXPECT_EQ(bench.witness_count, BigUint(44));
  Solver s;
  s.load(bench.cnf);
  EnumerateOptions eopts;
  eopts.store_models = false;
  eopts.projection = bench.cnf.sampling_set_or_all();
  const auto r = enumerate_models(s, eopts);
  ASSERT_TRUE(r.exhausted);
  EXPECT_EQ(BigUint(r.count), bench.witness_count);
}

TEST(SketchBench, SamplingSetIsControlWords) {
  SketchOptions opts;
  opts.spec_input_bits = 5;
  opts.selector_bits = 9;
  opts.mode_bits = 7;
  opts.threshold = 100;
  const SketchBench bench = make_sketch_bench(opts, "sketch_mid");
  ASSERT_TRUE(bench.cnf.sampling_set().has_value());
  EXPECT_EQ(bench.cnf.sampling_set()->size(), 16u);  // |c| + |d|
  // Huge dependent Tseitin core relative to the sampling set.
  EXPECT_GT(bench.cnf.num_vars(), 400);
}

TEST(SketchBench, SamplingSetIsIndependentSupport) {
  SketchOptions opts;
  opts.spec_input_bits = 4;
  opts.selector_bits = 5;
  opts.mode_bits = 4;
  opts.threshold = 9;
  const SketchBench bench = make_sketch_bench(opts, "sketch_tiny");
  const auto verdict = is_independent_support(
      bench.cnf, *bench.cnf.sampling_set());
  EXPECT_EQ(verdict, std::optional<bool>(true));
}

TEST(SketchBench, RejectsBadParameters) {
  SketchOptions opts;
  opts.threshold = 0;
  EXPECT_THROW(make_sketch_bench(opts, "bad"), std::invalid_argument);
  opts.threshold = 10;
  opts.mode_bits = 2;  // threshold 10 > 2^2
  EXPECT_THROW(make_sketch_bench(opts, "bad2"), std::invalid_argument);
}

TEST(Suite, Table1HasTwelveRows) {
  const auto suite = make_table1_suite(0.05);
  ASSERT_EQ(suite.size(), 12u);
  for (const auto& row : suite) {
    EXPECT_FALSE(row.name.empty());
    EXPECT_FALSE(row.paper_ref.empty());
    EXPECT_TRUE(row.cnf.sampling_set().has_value()) << row.name;
    EXPECT_GT(row.cnf.num_vars(), 0) << row.name;
  }
  // tutorial3_like must dwarf the circuit rows in |X| while having a
  // comparable |S| — the paper's scaling story.
  const auto& tutorial = suite.back();
  EXPECT_EQ(tutorial.name, "tutorial3_like");
  EXPECT_GT(tutorial.cnf.num_vars(), 10000);
  EXPECT_LE(tutorial.cnf.sampling_set()->size(), 32u);
}

TEST(Suite, Table2HasThirtyOneRows) {
  const auto suite = make_table2_suite(0.05);
  EXPECT_EQ(suite.size(), 31u);
}

TEST(Suite, ScaleShrinksSketchRows) {
  const auto small = make_table1_suite(0.05);
  const auto large = make_table1_suite(0.2);
  // Same row (tutorial3_like), bigger spec at larger scale.
  EXPECT_LT(small.back().cnf.num_vars(), large.back().cnf.num_vars());
}

TEST(Suite, EnvScaleParsing) {
  EXPECT_EQ(bench_scale_from_env(0.25), 0.25);  // unset: fallback
}

}  // namespace
}  // namespace unigen
