// Tests for native XOR propagation and the level-0 Gaussian elimination:
// equivalence with brute force, with CNF expansion, and with GF(2) rank.

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "sat/enumerator.hpp"
#include "sat/solver.hpp"
#include "util/gf2.hpp"

namespace unigen {
namespace {

using test::brute_force_count;
using test::random_cnf_xor;

Lit pos(Var v) { return Lit(v, false); }
Lit neg(Var v) { return Lit(v, true); }

TEST(XorEngine, TwoVarXorForcesInequality) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  ASSERT_TRUE(s.add_xor({a, b}, true));
  ASSERT_TRUE(s.add_clause({pos(a)}));
  ASSERT_EQ(s.solve(), lbool::True);
  EXPECT_EQ(s.model()[b], lbool::False);
}

TEST(XorEngine, TwoVarXnorForcesEquality) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  ASSERT_TRUE(s.add_xor({a, b}, false));
  ASSERT_TRUE(s.add_clause({neg(a)}));
  ASSERT_EQ(s.solve(), lbool::True);
  EXPECT_EQ(s.model()[b], lbool::False);
}

TEST(XorEngine, UnitXor) {
  Solver s;
  const Var a = s.new_var();
  ASSERT_TRUE(s.add_xor({a}, true));
  ASSERT_EQ(s.solve(), lbool::True);
  EXPECT_EQ(s.model()[a], lbool::True);
}

TEST(XorEngine, EmptyXorTrueIsUnsat) {
  Solver s;
  s.new_var();
  EXPECT_FALSE(s.add_xor({}, true));
  EXPECT_EQ(s.solve(), lbool::False);
}

TEST(XorEngine, DuplicateVarsCancel) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  // a ^ a ^ b = 1  simplifies to  b = 1.
  ASSERT_TRUE(s.add_xor({a, a, b}, true));
  ASSERT_EQ(s.solve(), lbool::True);
  EXPECT_EQ(s.model()[b], lbool::True);
}

TEST(XorEngine, InconsistentXorSystemIsUnsat) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  const Var c = s.new_var();
  ASSERT_TRUE(s.add_xor({a, b}, true));
  ASSERT_TRUE(s.add_xor({b, c}, true));
  // a^b=1, b^c=1 => a^c=0; asserting a^c=1 is inconsistent.
  s.add_xor({a, c}, true);
  EXPECT_EQ(s.solve(), lbool::False);
}

TEST(XorEngine, LongXorPropagatesLastVar) {
  Solver s;
  std::vector<Var> vars;
  for (int i = 0; i < 20; ++i) vars.push_back(s.new_var());
  ASSERT_TRUE(s.add_xor(vars, true));
  // Fix all but the last to false: the last must be true.
  for (int i = 0; i < 19; ++i) ASSERT_TRUE(s.add_clause({neg(vars[i])}));
  ASSERT_EQ(s.solve(), lbool::True);
  EXPECT_EQ(s.model()[vars[19]], lbool::True);
  EXPECT_GT(s.stats().xor_propagations + s.stats().gauss_units, 0u);
}

TEST(XorEngine, XorOnlySystemCountMatchesRank) {
  // Solution count of a pure XOR system = 2^(n - rank).
  Rng rng(3);
  for (int round = 0; round < 10; ++round) {
    const Var n = 10;
    Cnf cnf(n);
    Gf2System system(static_cast<std::size_t>(n));
    bool consistent = true;
    for (int i = 0; i < 6; ++i) {
      std::vector<Var> vars;
      for (Var v = 0; v < n; ++v)
        if (rng.flip()) vars.push_back(v);
      if (vars.empty()) vars.push_back(0);
      const bool rhs = rng.flip();
      cnf.add_xor(vars, rhs);
      std::vector<std::uint32_t> cols(vars.begin(), vars.end());
      consistent = system.add_constraint(cols, rhs) && consistent;
    }
    const std::uint64_t expected =
        consistent ? (std::uint64_t{1} << (n - system.rank())) : 0;
    EXPECT_EQ(brute_force_count(cnf), expected);

    Solver solver;
    solver.load(cnf);
    EnumerateOptions opts;
    opts.store_models = false;
    const auto result = enumerate_models(solver, opts);
    EXPECT_TRUE(result.exhausted);
    EXPECT_EQ(result.count, expected) << "round " << round;
  }
}

TEST(XorEngine, GaussFindsUnits) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  const Var c = s.new_var();
  // a^b=1, a^c=1, b^c=1 is inconsistent; with rhs flipped on the last it
  // implies nothing by watching alone until decisions are made, but Gauss
  // can see b^c=0 from rows 1+2.
  ASSERT_TRUE(s.add_xor({a, b}, true));
  ASSERT_TRUE(s.add_xor({a, c}, true));
  ASSERT_TRUE(s.add_xor({b, c}, false));
  EXPECT_EQ(s.solve(), lbool::True);
}

TEST(XorEngine, SolutionCountUnaffectedByGaussToggle) {
  Rng rng(17);
  for (const bool gauss : {false, true}) {
    Rng local(99);
    const Cnf cnf = random_cnf_xor(9, 12, 3, 3, local);
    Solver solver;
    solver.options().xor_gauss = gauss;
    solver.load(cnf);
    EnumerateOptions opts;
    opts.store_models = false;
    const auto result = enumerate_models(solver, opts);
    EXPECT_TRUE(result.exhausted);
    EXPECT_EQ(result.count, brute_force_count(cnf)) << "gauss=" << gauss;
  }
  (void)rng;
}

// --- property test: CNF+XOR verdicts match brute force ---

class XorFuzz : public ::testing::TestWithParam<int> {};

TEST_P(XorFuzz, MatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6151 + 5);
  for (int round = 0; round < 6; ++round) {
    const Cnf cnf = random_cnf_xor(9, 18, 3, 4, rng);
    const bool expect_sat = brute_force_count(cnf) > 0;
    Solver s;
    s.load(cnf);
    const lbool got = s.solve();
    ASSERT_NE(got, lbool::Undef);
    EXPECT_EQ(got == lbool::True, expect_sat)
        << "seed=" << GetParam() << " round=" << round;
    if (got == lbool::True) {
      EXPECT_TRUE(cnf.satisfied_by(s.model()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, XorFuzz, ::testing::Range(0, 20));

// --- property test: XOR-native solving agrees with CNF expansion ---

class XorExpandFuzz : public ::testing::TestWithParam<int> {};

TEST_P(XorExpandFuzz, NativeAgreesWithExpansion) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 2);
  const Cnf cnf = random_cnf_xor(10, 14, 3, 4, rng);
  const Cnf expanded = cnf.expand_xors();

  Solver native;
  native.load(cnf);
  Solver expand;
  expand.load(expanded);
  const lbool a = native.solve();
  const lbool b = expand.solve();
  ASSERT_NE(a, lbool::Undef);
  ASSERT_NE(b, lbool::Undef);
  EXPECT_EQ(a, b);

  // Counts projected on the original variables must agree as well.
  std::vector<Var> orig(10);
  for (Var v = 0; v < 10; ++v) orig[static_cast<std::size_t>(v)] = v;

  Solver s1;
  s1.load(cnf);
  EnumerateOptions o1;
  o1.store_models = false;
  const auto r1 = enumerate_models(s1, o1);

  Solver s2;
  s2.load(expanded);
  EnumerateOptions o2;
  o2.store_models = false;
  o2.projection = orig;
  const auto r2 = enumerate_models(s2, o2);

  EXPECT_TRUE(r1.exhausted);
  EXPECT_TRUE(r2.exhausted);
  EXPECT_EQ(r1.count, r2.count);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, XorExpandFuzz, ::testing::Range(0, 15));

}  // namespace
}  // namespace unigen
