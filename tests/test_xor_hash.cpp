// Tests for the H_xor(n, m, 3) hash family: row statistics, partition
// semantics, and pairwise-independence-style balance properties the
// algorithms rely on.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "hashing/xor_hash.hpp"
#include "helpers.hpp"
#include "sat/enumerator.hpp"

namespace unigen {
namespace {

std::vector<Var> iota_vars(Var n) {
  std::vector<Var> v(static_cast<std::size_t>(n));
  for (Var i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = i;
  return v;
}

Model model_from_bits(std::uint64_t bits, Var n) {
  Model m(static_cast<std::size_t>(n));
  for (Var v = 0; v < n; ++v)
    m[static_cast<std::size_t>(v)] =
        ((bits >> v) & 1u) ? lbool::True : lbool::False;
  return m;
}

TEST(XorHash, DrawsRequestedRowCount) {
  Rng rng(61);
  const auto h = draw_xor_hash(iota_vars(20), 7, rng);
  EXPECT_EQ(h.m(), 7u);
  EXPECT_EQ(h.rows.size(), 7u);
}

TEST(XorHash, RowsOnlyUseGivenVariables) {
  Rng rng(63);
  const std::vector<Var> s{2, 5, 7, 11};
  const auto h = draw_xor_hash(s, 10, rng);
  for (const auto& row : h.rows) {
    for (const Var v : row.vars) {
      EXPECT_TRUE(std::find(s.begin(), s.end(), v) != s.end());
    }
  }
}

TEST(XorHash, AverageRowLengthIsHalfTheSupport) {
  // E[row length] = n/2: the paper's scalability argument in one number.
  Rng rng(65);
  const Var n = 100;
  double total = 0;
  const int kDraws = 200;
  for (int i = 0; i < kDraws; ++i) {
    const auto h = draw_xor_hash(iota_vars(n), 5, rng);
    total += h.average_row_length();
  }
  EXPECT_NEAR(total / kDraws, n / 2.0, 2.0);
}

TEST(XorHash, CellOfIsConsistentWithConjoinedFormula) {
  // Models of F ∧ (h = α) are exactly the models of F with
  // in_target_cell() true.
  Rng rng(67);
  Cnf cnf = test::random_cnf(8, 12, 3, rng);
  const auto base_models = test::brute_force_models(cnf);
  ASSERT_GT(base_models.size(), 0u);
  const auto h = draw_xor_hash(iota_vars(8), 3, rng);
  Cnf hashed = cnf;
  h.conjoin_to(hashed);
  const auto hashed_models = test::brute_force_models(hashed);
  std::size_t expected = 0;
  for (const auto& m : base_models)
    if (h.in_target_cell(m)) ++expected;
  EXPECT_EQ(hashed_models.size(), expected);
  for (const auto& m : hashed_models) EXPECT_TRUE(h.in_target_cell(m));
}

TEST(XorHash, CellsPartitionTheSpace) {
  // Summing cell populations over all 2^m cells recovers the whole space.
  Rng rng(71);
  const Var n = 10;
  const std::size_t m = 3;
  const auto h = draw_xor_hash(iota_vars(n), m, rng);
  std::map<std::uint64_t, std::uint64_t> cells;
  for (std::uint64_t bits = 0; bits < (1u << n); ++bits)
    ++cells[h.cell_of(model_from_bits(bits, n))];
  std::uint64_t total = 0;
  for (const auto& [cell, count] : cells) {
    EXPECT_LT(cell, 1u << m);
    total += count;
  }
  EXPECT_EQ(total, 1u << n);
}

TEST(XorHash, CellSizesAreBalancedOnAverage) {
  // E[|cell|] = 2^(n-m); also check concentration loosely across draws.
  Rng rng(73);
  const Var n = 10;
  const std::size_t m = 4;
  double total_target_cell = 0;
  const int kDraws = 150;
  for (int d = 0; d < kDraws; ++d) {
    const auto h = draw_xor_hash(iota_vars(n), m, rng);
    std::uint64_t target = 0;
    for (std::uint64_t bits = 0; bits < (1u << n); ++bits)
      if (h.in_target_cell(model_from_bits(bits, n))) ++target;
    total_target_cell += static_cast<double>(target);
  }
  const double expected = std::pow(2.0, n - static_cast<double>(m));
  EXPECT_NEAR(total_target_cell / kDraws, expected, expected * 0.15);
}

TEST(XorHash, PairwiseCollisionProbability) {
  // For fixed distinct y, z: Pr[h(y) = h(z)] = 2^-m (2-wise independence).
  Rng rng(79);
  const Var n = 12;
  const std::size_t m = 3;
  const Model y = model_from_bits(0x2a5, n);
  const Model z = model_from_bits(0x13c, n);
  int collisions = 0;
  const int kDraws = 8000;
  for (int d = 0; d < kDraws; ++d) {
    const auto h = draw_xor_hash(iota_vars(n), m, rng);
    if (h.cell_of(y) == h.cell_of(z)) ++collisions;
  }
  EXPECT_NEAR(static_cast<double>(collisions) / kDraws, 1.0 / (1u << m),
              0.015);
}

TEST(XorHash, SingleAssignmentCellIsUniform) {
  // For fixed y: Pr[y in target cell] = 2^-m.
  Rng rng(83);
  const Var n = 12;
  const std::size_t m = 2;
  const Model y = model_from_bits(0x0f0, n);
  int hits = 0;
  const int kDraws = 8000;
  for (int d = 0; d < kDraws; ++d) {
    const auto h = draw_xor_hash(iota_vars(n), m, rng);
    if (h.in_target_cell(y)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.25, 0.02);
}

TEST(XorHash, ConjoinedEnumerationMatchesBruteForce) {
  Rng rng(89);
  for (int round = 0; round < 8; ++round) {
    Cnf cnf = test::random_cnf(9, 14, 3, rng);
    const auto h = draw_xor_hash(iota_vars(9), 2 + round % 3, rng);
    Cnf hashed = cnf;
    h.conjoin_to(hashed);
    const auto result = bsat(hashed, UINT64_MAX);
    ASSERT_TRUE(result.exhausted);
    EXPECT_EQ(result.count, test::brute_force_count(hashed))
        << "round " << round;
  }
}

TEST(XorHash, ZeroRowsHashIsIdentityConstraint) {
  Rng rng(97);
  const auto h = draw_xor_hash(iota_vars(5), 0, rng);
  EXPECT_EQ(h.m(), 0u);
  EXPECT_TRUE(h.in_target_cell(model_from_bits(7, 5)));
  Cnf cnf(5);
  cnf.add_clause({Lit(0, false)});
  h.conjoin_to(cnf);
  EXPECT_EQ(cnf.num_xors(), 0u);
}

}  // namespace
}  // namespace unigen
