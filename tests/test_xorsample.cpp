// Tests for the XORSample' baseline.

#include <gtest/gtest.h>

#include "core/xorsample.hpp"
#include "helpers.hpp"

namespace unigen {
namespace {

Cnf medium_formula() {
  Cnf cnf(10);
  cnf.add_clause({Lit(0, false), Lit(1, false), Lit(2, false)});
  cnf.add_clause({Lit(3, false), Lit(4, true)});
  cnf.add_clause({Lit(5, false), Lit(6, false), Lit(7, true)});
  return cnf;
}

TEST(XorSample, ValidWitnessesWithGoodS) {
  const Cnf cnf = medium_formula();  // ~600 witnesses, log2 ≈ 9.2
  Rng rng(1);
  XorSampleOptions opts;
  opts.s = 6;  // cells of expected size ~9
  XorSamplePrime sampler(cnf, opts, rng);
  int ok = 0;
  for (int i = 0; i < 100; ++i) {
    const auto r = sampler.sample();
    if (r.ok()) {
      ++ok;
      EXPECT_TRUE(cnf.satisfied_by(r.witness));
    }
  }
  EXPECT_GT(ok, 50);
}

TEST(XorSample, TooSmallSOverflowsCellBound) {
  const Cnf cnf = medium_formula();
  Rng rng(2);
  XorSampleOptions opts;
  opts.s = 1;          // cells of expected size ~300
  opts.cell_bound = 8; // force the "s too small" failure
  XorSamplePrime sampler(cnf, opts, rng);
  int failures = 0;
  for (int i = 0; i < 20; ++i)
    failures += sampler.sample().status == SampleResult::Status::kFail;
  EXPECT_GT(failures, 15);
}

TEST(XorSample, TooLargeSYieldsEmptyCells) {
  const Cnf cnf = medium_formula();
  Rng rng(3);
  XorSampleOptions opts;
  opts.s = 25;  // cells of expected size 600/2^25 ~ 0
  XorSamplePrime sampler(cnf, opts, rng);
  int failures = 0;
  for (int i = 0; i < 20; ++i)
    failures += sampler.sample().status == SampleResult::Status::kFail;
  EXPECT_GT(failures, 15);
}

TEST(XorSample, ShortXorKnobShrinksRows) {
  const Cnf cnf = medium_formula();
  Rng rng(4);
  XorSampleOptions dense;
  dense.s = 5;
  XorSamplePrime d(cnf, dense, rng);
  for (int i = 0; i < 50; ++i) d.sample();

  Rng rng2(5);
  XorSampleOptions sparse;
  sparse.s = 5;
  sparse.q = 0.15;  // the SAT'07 short-XOR variant
  XorSamplePrime sp(cnf, sparse, rng2);
  for (int i = 0; i < 50; ++i) sp.sample();

  EXPECT_NEAR(d.stats().average_xor_length(), 5.0, 1.0);
  EXPECT_NEAR(sp.stats().average_xor_length(), 1.5, 0.7);
}

TEST(XorSample, StatsTrackOutcomes) {
  const Cnf cnf = medium_formula();
  Rng rng(6);
  XorSampleOptions opts;
  opts.s = 6;
  XorSamplePrime sampler(cnf, opts, rng);
  for (int i = 0; i < 30; ++i) sampler.sample();
  const auto& st = sampler.stats();
  EXPECT_EQ(st.samples_requested, 30u);
  EXPECT_EQ(st.samples_requested,
            st.samples_ok + st.samples_failed + st.samples_timed_out);
}

}  // namespace
}  // namespace unigen
